#include "query/uncertain_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

#include "exec/parallel_for.hpp"
#include "index/cascade.hpp"
#include "prob/rng.hpp"
#include "query/engine.hpp"

namespace uts::query {

namespace {

/// Top-k by descending score (probability), ties by ascending index — the
/// selection order of the probabilistic k-NN queries. `exclude` is skipped.
std::vector<Neighbor> SelectTopKByScore(std::span<const double> scores,
                                        std::size_t exclude, std::size_t k) {
  std::vector<Neighbor> all;
  all.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i == exclude) continue;
    all.push_back({i, scores[i]});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance > b.distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(take);
  return all;
}

}  // namespace

UncertainEngine::UncertainEngine(UncertainEngineOptions options)
    : options_(options),
      dispatch_(&distance::ResolveDispatch(options.simd)) {
  if (options_.grain == 0) options_.grain = 1;
  proud_v_ = 2.0 * options_.proud_sigma * options_.proud_sigma;
  if (options_.shared_pool != nullptr) {
    pool_ = options_.shared_pool;
    return;
  }
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads > 1) {
    owned_pool_ = std::make_unique<exec::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

UncertainEngine::~UncertainEngine() = default;

std::size_t UncertainEngine::threads() const {
  return pool_ ? pool_->size() : 1;
}

Result<std::unique_ptr<UncertainEngine>> UncertainEngine::Create(
    const uncertain::UncertainDataset& pdf, UncertainEngineOptions options) {
  if (pdf.size() == 0) {
    return Status::InvalidArgument("uncertain engine needs a non-empty "
                                   "dataset");
  }
  const std::size_t n = pdf.size();
  const std::size_t len = pdf[0].size();
  if (len == 0) {
    return Status::InvalidArgument("uncertain engine needs non-empty series");
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (pdf[s].size() != len) {
      return Status::InvalidArgument(
          "uncertain engine needs series of uniform length");
    }
  }

  std::unique_ptr<UncertainEngine> engine(
      new UncertainEngine(std::move(options)));

  // --- Pack observations + error-class ids ---------------------------------
  // Class resolution is layered like measures::Dust's table cache: a
  // last-seen-pointer memo (consecutive points usually share one
  // distribution), then a pointer-keyed map, and only for a never-seen
  // pointer the semantic string key — so the common constant-error dataset
  // pays one Key() call total, not one per point.
  std::vector<double> values;
  values.reserve(n * len);
  std::map<std::string, std::uint16_t> class_of;
  std::map<const void*, std::uint16_t> class_of_ptr;
  const prob::ErrorDistribution* last_ptr = nullptr;
  std::uint16_t last_id = 0;
  engine->class_ids_.resize(n * len);
  for (std::size_t s = 0; s < n; ++s) {
    const uncertain::UncertainSeries& series = pdf[s];
    for (std::size_t t = 0; t < len; ++t) {
      values.push_back(series.observation(t));
      const auto& err = series.error(t);
      if (err.get() != last_ptr) {
        auto pit = class_of_ptr.find(err.get());
        if (pit == class_of_ptr.end()) {
          auto [it, inserted] = class_of.emplace(
              err->Key(),
              static_cast<std::uint16_t>(engine->class_dists_.size()));
          if (inserted) {
            if (engine->class_dists_.size() >= 0xffff) {
              return Status::NotSupported(
                  "uncertain engine supports at most 65535 distinct error "
                  "models");
            }
            engine->class_dists_.push_back(err);
          }
          pit = class_of_ptr.emplace(err.get(), it->second).first;
        }
        last_ptr = err.get();
        last_id = pit->second;
      }
      engine->class_ids_[s * len + t] = last_id;
    }
  }
  engine->num_classes_ = engine->class_dists_.size();
  auto store = ts::SoaStore::FromPacked(std::move(values), len,
                                        engine->options_.buffer_pool,
                                        engine->options_.block_rows);
  if (!store.ok()) return store.status();
  engine->store_ = std::move(store).ValueOrDie();
  if (engine->options_.index.enabled) {
    engine->synopsis_index_ = std::make_unique<index::SynopsisIndex>(
        engine->store_, engine->options_.index.synopsis_coefficients);
  }
  return engine;
}

Status UncertainEngine::BuildProudMomentColumns() {
  if (proud_moments_ready_) return Status::OK();
  // Per-class central moments scattered into per-point SoA columns — the
  // "moment prefixes" the general sweep streams instead of paying six
  // virtual CentralMoment calls per point pair.
  std::vector<double> m2_of_class, m3_of_class, m4_of_class;
  for (const auto& dist : class_dists_) {
    m2_of_class.push_back(dist->CentralMoment(2));
    m3_of_class.push_back(dist->CentralMoment(3));
    m4_of_class.push_back(dist->CentralMoment(4));
  }
  // Each column streams through FromRows one block at a time, so paged
  // engines never materialize a full n×len moment column; its blocking is a
  // pure function of (stride, block_rows), so the moment stores share the
  // observation store's block geometry.
  const std::size_t len = length();
  const auto build = [&](const std::vector<double>& of_class) {
    return ts::SoaStore::FromRows(
        size(), len,
        [&](std::size_t r, std::span<double> out) {
          const std::uint16_t* ids = class_ids_.data() + r * len;
          for (std::size_t t = 0; t < len; ++t) out[t] = of_class[ids[t]];
        },
        options_.buffer_pool, options_.block_rows);
  };
  auto m2 = build(m2_of_class);
  if (!m2.ok()) return m2.status();
  auto m3 = build(m3_of_class);
  if (!m3.ok()) return m3.status();
  auto m4 = build(m4_of_class);
  if (!m4.ok()) return m4.status();
  m2_store_ = std::move(m2).ValueOrDie();
  m3_store_ = std::move(m3).ValueOrDie();
  m4_store_ = std::move(m4).ValueOrDie();
  proud_moments_ready_ = true;
  return Status::OK();
}

// --- DUST --------------------------------------------------------------------

Status UncertainEngine::BuildDustTables(measures::Dust& shared_cache) {
  if (dust_ready_) return Status::OK();
  const std::size_t k = num_classes_;
  dust_luts_.assign(k * k, distance::DustLut{});
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a; b < k; ++b) {
      // The cache canonicalizes pair order internally (Dust::TableFor), so
      // borrowed tables are bitwise the ones the scalar measure serves.
      auto table = shared_cache.Table(class_dists_[a], class_dists_[b]);
      if (!table.ok()) return table.status();
      const distance::DustLut lut = table.ValueOrDie()->Lut();
      dust_luts_[a * k + b] = lut;
      dust_luts_[b * k + a] = lut;
    }
  }
  // Minorant of every table: turns the synopsis Euclidean bounds into DUST
  // bounds. Harmless when no index was built; invalid maps simply disable
  // the DUST cascade.
  dust_bound_ = index::DustLowerBoundMap::FromLuts(dust_luts_);
  dust_ready_ = true;
  return Status::OK();
}

Status UncertainEngine::BuildDustTables() {
  if (dust_ready_) return Status::OK();
  // Own a private scalar cache and delegate: canonicalization and table
  // construction live in measures::Dust alone, so privately built and
  // borrowed engines can never diverge.
  owned_dust_cache_ = std::make_unique<measures::Dust>(options_.dust);
  return BuildDustTables(*owned_dust_cache_);
}

Result<std::vector<double>> UncertainEngine::DustDistances(
    std::size_t query) const {
  assert(query < size());
  if (!dust_ready_) {
    return Status::InvalidArgument(
        "DUST tables not built; call BuildDustTables first");
  }
  const std::size_t n = size();
  const std::size_t len = length();
  std::vector<double> distances(n, 0.0);
  const ts::StoreView view(store_);
  const auto query_pin = ts::PinRowOrAbort(view, query);
  const std::span<const double> qrow = query_pin.row();
  const auto chunks = ts::PartitionRows(view, options_.grain);
  if (num_classes_ == 1) {
    const distance::DustLut& lut = PairLut(0, 0);
    exec::ParallelFor(
        pool_, chunks.size(), /*grain=*/1,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
            const ts::RowChunk& chunk = chunks[c];
            const auto pin = ts::PinOrAbort(view, chunk.block);
            dispatch_->dust_range(qrow, pin.block(), lut,
                                  chunk.begin - pin.first_row(),
                                  chunk.end - pin.first_row(),
                                  std::span<double>(distances)
                                      .subspan(chunk.begin,
                                               chunk.end - chunk.begin));
          }
        });
    return distances;
  }
  std::vector<const distance::DustLut*> qluts(len);
  for (std::size_t t = 0; t < len; ++t) {
    qluts[t] = &dust_luts_[class_id(query, t) * num_classes_];
  }
  exec::ParallelFor(
      pool_, chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          const ts::RowChunk& chunk = chunks[c];
          const auto pin = ts::PinOrAbort(view, chunk.block);
          const std::span<const std::uint16_t> block_ids =
              std::span<const std::uint16_t>(class_ids_)
                  .subspan(pin.first_row() * len);
          dispatch_->dust_classed_range(qrow, pin.block(), qluts, block_ids,
                                        chunk.begin - pin.first_row(),
                                        chunk.end - pin.first_row(),
                                        std::span<double>(distances)
                                            .subspan(chunk.begin,
                                                     chunk.end - chunk.begin));
        }
      });
  return distances;
}

Result<double> UncertainEngine::DustDistance(std::size_t query,
                                             std::size_t candidate) const {
  assert(query < size() && candidate < size());
  if (!dust_ready_) {
    return Status::InvalidArgument(
        "DUST tables not built; call BuildDustTables first");
  }
  const ts::StoreView view(store_);
  const auto query_pin = ts::PinRowOrAbort(view, query);
  const auto cand_pin = ts::PinRowOrAbort(view, candidate);
  const std::span<const double> q = query_pin.row();
  const std::span<const double> c = cand_pin.row();
  double sum = 0.0;
  for (std::size_t t = 0; t < q.size(); ++t) {
    const double d =
        PairLut(class_id(query, t), class_id(candidate, t)).Eval(q[t] - c[t]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

namespace {

/// Work accounting of a DUST sweep that scores every eligible candidate.
void ChargeFullDustSweep(index::SearchCost* cost, std::size_t eligible) {
  if (cost == nullptr) return;
  cost->candidates_total += eligible;
  cost->candidates_touched += eligible;
}

}  // namespace

std::vector<double> UncertainEngine::DustCascadeLowerBounds(
    std::size_t query) const {
  // Stage-1 bounds: Haar-synopsis Euclidean lower bounds on the observation
  // rows, mapped through the table minorant into the DUST metric.
  std::vector<double> bounds(size(), 0.0);
  const ts::StoreView view(store_);
  const auto query_pin = ts::PinRowOrAbort(view, query);
  synopsis_index_->EuclideanLowerBounds(
      synopsis_index_->Synopsize(query_pin.row()), bounds);
  for (double& b : bounds) b = dust_bound_(b);
  return bounds;
}

index::ExactScorer UncertainEngine::DustCascadeScorer(
    std::span<const double> qrow,
    const std::vector<const distance::DustLut*>& qluts) const {
  // Exact stage-2 scorer: the same per-row-deterministic dispatch kernels
  // the full sweep runs, on single-row ranges — bitwise identical values.
  // DUST has no early-abandon kernel, so `tau` is unused. `qrow` must stay
  // pinned by the caller for the scorer's lifetime; the candidate row's
  // block is pinned per call (free for resident stores).
  if (num_classes_ == 1) {
    const distance::DustLut& lut = PairLut(0, 0);
    return [this, qrow, &lut](std::size_t row, double /*tau*/) {
      const ts::StoreView view(store_);
      const auto pin = ts::PinOrAbort(view, view.block_of(row));
      const std::size_t local = row - pin.first_row();
      double value = 0.0;
      dispatch_->dust_range(qrow, pin.block(), lut, local, local + 1,
                            std::span<double>(&value, 1));
      return value;
    };
  }
  return [this, qrow, &qluts](std::size_t row, double /*tau*/) {
    const ts::StoreView view(store_);
    const auto pin = ts::PinOrAbort(view, view.block_of(row));
    const std::size_t local = row - pin.first_row();
    const std::span<const std::uint16_t> block_ids =
        std::span<const std::uint16_t>(class_ids_)
            .subspan(pin.first_row() * store_.stride());
    double value = 0.0;
    dispatch_->dust_classed_range(qrow, pin.block(), qluts, block_ids, local,
                                  local + 1, std::span<double>(&value, 1));
    return value;
  };
}

Result<std::vector<Neighbor>> UncertainEngine::KNearestDust(
    std::size_t query, std::size_t k, index::SearchCost* cost) const {
  if (dust_index_enabled()) {
    const std::vector<double> bounds = DustCascadeLowerBounds(query);
    std::vector<const distance::DustLut*> qluts;
    if (num_classes_ > 1) {
      qluts.resize(length());
      for (std::size_t t = 0; t < length(); ++t) {
        qluts[t] = &dust_luts_[class_id(query, t) * num_classes_];
      }
    }
    const ts::StoreView view(store_);
    const auto query_pin = ts::PinRowOrAbort(view, query);
    return index::CascadeKNearest(
        bounds, query, k, DustCascadeScorer(query_pin.row(), qluts), cost);
  }
  auto distances = DustDistances(query);
  if (!distances.ok()) return distances.status();
  ChargeFullDustSweep(cost, size() - 1);
  return detail::SelectKNearest(distances.ValueOrDie(), query, k);
}

Result<std::vector<std::size_t>> UncertainEngine::RangeSearchDust(
    std::size_t query, double epsilon, index::SearchCost* cost) const {
  if (dust_index_enabled()) {
    const std::vector<double> bounds = DustCascadeLowerBounds(query);
    std::vector<const distance::DustLut*> qluts;
    if (num_classes_ > 1) {
      qluts.resize(length());
      for (std::size_t t = 0; t < length(); ++t) {
        qluts[t] = &dust_luts_[class_id(query, t) * num_classes_];
      }
    }
    const ts::StoreView view(store_);
    const auto query_pin = ts::PinRowOrAbort(view, query);
    return index::CascadeRangeSearch(
        bounds, query, epsilon, DustCascadeScorer(query_pin.row(), qluts),
        cost);
  }
  auto distances = DustDistances(query);
  if (!distances.ok()) return distances.status();
  ChargeFullDustSweep(cost, size() - 1);
  const std::vector<double>& d = distances.ValueOrDie();
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i == query) continue;
    if (d[i] <= epsilon) matches.push_back(i);
  }
  return matches;
}

// --- PROUD -------------------------------------------------------------------

std::vector<double> UncertainEngine::ProudMatchProbabilities(
    std::size_t query, double epsilon) const {
  assert(query < size());
  const std::size_t n = size();
  std::vector<double> mean(n, 0.0), var(n, 0.0), probs(n, 0.0);
  const ts::StoreView view(store_);
  const auto query_pin = ts::PinRowOrAbort(view, query);
  const std::span<const double> qrow = query_pin.row();
  const auto chunks = ts::PartitionRows(view, options_.grain);
  exec::ParallelFor(
      pool_, chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          const ts::RowChunk& chunk = chunks[c];
          const auto pin = ts::PinOrAbort(view, chunk.block);
          dispatch_->proud_moment_range(
              qrow, pin.block(), proud_v_, chunk.begin - pin.first_row(),
              chunk.end - pin.first_row(),
              std::span<double>(mean).subspan(chunk.begin,
                                              chunk.end - chunk.begin),
              std::span<double>(var).subspan(chunk.begin,
                                             chunk.end - chunk.begin));
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            probs[i] = measures::Proud::ProbabilityFromStats(
                {mean[i], var[i]}, epsilon);
          }
        }
      });
  return probs;
}

std::vector<std::size_t> UncertainEngine::ProbabilisticRangeSearchProud(
    std::size_t query, double epsilon, double tau) const {
  assert(query < size());
  const std::size_t n = size();
  std::vector<double> mean(n, 0.0), var(n, 0.0);
  std::vector<std::uint8_t> matched(n, 0);
  const ts::StoreView view(store_);
  const auto query_pin = ts::PinRowOrAbort(view, query);
  const std::span<const double> qrow = query_pin.row();
  const auto chunks = ts::PartitionRows(view, options_.grain);
  exec::ParallelFor(
      pool_, chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          const ts::RowChunk& chunk = chunks[c];
          const auto pin = ts::PinOrAbort(view, chunk.block);
          dispatch_->proud_moment_range(
              qrow, pin.block(), proud_v_, chunk.begin - pin.first_row(),
              chunk.end - pin.first_row(),
              std::span<double>(mean).subspan(chunk.begin,
                                              chunk.end - chunk.begin),
              std::span<double>(var).subspan(chunk.begin,
                                             chunk.end - chunk.begin));
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            matched[i] = measures::Proud::DecideFromStats({mean[i], var[i]},
                                                          epsilon, tau)
                             ? 1
                             : 0;
          }
        }
      });
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == query) continue;
    if (matched[i] != 0) matches.push_back(i);
  }
  return matches;
}

std::vector<Neighbor> UncertainEngine::KNearestProud(std::size_t query,
                                                     double epsilon,
                                                     std::size_t k) const {
  return SelectTopKByScore(ProudMatchProbabilities(query, epsilon), query, k);
}

Result<std::vector<double>> UncertainEngine::ProudGeneralMatchProbabilities(
    std::size_t query, double epsilon) const {
  assert(query < size());
  if (!proud_moments_ready_) {
    return Status::InvalidArgument(
        "PROUD moment columns not built; call BuildProudMomentColumns "
        "first");
  }
  const std::size_t n = size();
  std::vector<double> mean(n, 0.0), var(n, 0.0), probs(n, 0.0);
  // The moment columns share the observation store's block geometry (same
  // stride, same block_rows), so one chunk maps to the same block index in
  // all four stores.
  assert(m2_store_.block_rows() == store_.block_rows());
  const ts::StoreView view(store_);
  const ts::StoreView m2_view(m2_store_), m3_view(m3_store_),
      m4_view(m4_store_);
  const auto query_pin = ts::PinRowOrAbort(view, query);
  const auto q2_pin = ts::PinRowOrAbort(m2_view, query);
  const auto q3_pin = ts::PinRowOrAbort(m3_view, query);
  const auto q4_pin = ts::PinRowOrAbort(m4_view, query);
  const auto chunks = ts::PartitionRows(view, options_.grain);
  exec::ParallelFor(
      pool_, chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          const ts::RowChunk& chunk = chunks[c];
          const auto pin = ts::PinOrAbort(view, chunk.block);
          const auto m2_pin = ts::PinOrAbort(m2_view, chunk.block);
          const auto m3_pin = ts::PinOrAbort(m3_view, chunk.block);
          const auto m4_pin = ts::PinOrAbort(m4_view, chunk.block);
          dispatch_->proud_general_moment_range(
              query_pin.row(), q2_pin.row(), q3_pin.row(), q4_pin.row(),
              pin.block(), m2_pin.block(), m3_pin.block(), m4_pin.block(),
              chunk.begin - pin.first_row(), chunk.end - pin.first_row(),
              std::span<double>(mean).subspan(chunk.begin,
                                              chunk.end - chunk.begin),
              std::span<double>(var).subspan(chunk.begin,
                                             chunk.end - chunk.begin));
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            probs[i] = measures::Proud::ProbabilityFromStats(
                {mean[i], var[i]}, epsilon);
          }
        }
      });
  return probs;
}

// --- MUNICH ------------------------------------------------------------------

Status UncertainEngine::AttachSamples(
    const uncertain::MultiSampleDataset& samples) {
  if (samples.size() != size()) {
    return Status::InvalidArgument(
        "sample-model dataset size does not match the pdf dataset");
  }
  const std::size_t n = size();
  const std::size_t len = length();
  std::vector<double> lo(n * len), hi(n * len);
  for (std::size_t s = 0; s < n; ++s) {
    const uncertain::MultiSampleSeries& series = samples[s];
    if (series.size() != len) {
      return Status::InvalidArgument(
          "sample-model series length does not match the pdf dataset");
    }
    for (std::size_t t = 0; t < len; ++t) {
      if (series.num_samples(t) == 0) {
        return Status::InvalidArgument("timestamp without observations");
      }
      std::tie(lo[s * len + t], hi[s * len + t]) = series.BoundingInterval(t);
    }
  }
  auto lo_store = ts::SoaStore::FromPacked(std::move(lo), len,
                                           options_.buffer_pool,
                                           options_.block_rows);
  if (!lo_store.ok()) return lo_store.status();
  auto hi_store = ts::SoaStore::FromPacked(std::move(hi), len,
                                           options_.buffer_pool,
                                           options_.block_rows);
  if (!hi_store.ok()) return hi_store.status();
  sample_lo_ = std::move(lo_store).ValueOrDie();
  sample_hi_ = std::move(hi_store).ValueOrDie();
  samples_ = &samples;
  return Status::OK();
}

std::uint64_t UncertainEngine::MunichPairSeed(std::size_t qi,
                                              std::size_t ci) const {
  // Counter-based: the stream of pair (qi, ci) depends only on the pair
  // counter qi·n + ci and the engine seed — never on evaluation order or
  // thread placement. Shared with the evaluation matchers, so engine
  // sweeps reproduce the sequential results bit-exactly.
  return prob::PairStreamSeed(options_.seed, qi, ci, size());
}

Result<double> UncertainEngine::MunichPairProbability(std::size_t qi,
                                                      std::size_t ci,
                                                      double epsilon) const {
  const uncertain::MultiSampleSeries& x = (*samples_)[qi];
  const uncertain::MultiSampleSeries& y = (*samples_)[ci];
  measures::MunichOptions options = options_.munich;
  if (options.use_bounds_filter) {
    const ts::StoreView lo_view(sample_lo_), hi_view(sample_hi_);
    const auto qlo = ts::PinRowOrAbort(lo_view, qi);
    const auto qhi = ts::PinRowOrAbort(hi_view, qi);
    const auto clo = ts::PinRowOrAbort(lo_view, ci);
    const auto chi = ts::PinRowOrAbort(hi_view, ci);
    const measures::DistanceBounds bounds =
        measures::Munich::EuclideanBoundsFromIntervals(
            qlo.row(), qhi.row(), clo.row(), chi.row());
    if (bounds.upper <= epsilon) return 1.0;
    if (bounds.lower > epsilon) return 0.0;
    // The filter did not decide; hand the estimator a filter-free matcher
    // so the bounds are not recomputed from the raw samples.
    options.use_bounds_filter = false;
  }
  return measures::Munich(options).MatchProbability(x, y, epsilon,
                                                    MunichPairSeed(qi, ci));
}

Result<std::vector<double>> UncertainEngine::MunichMatchProbabilities(
    std::size_t query, double epsilon) const {
  assert(query < size());
  if (samples_ == nullptr) {
    return Status::InvalidArgument(
        "no sample-model dataset attached (required by MUNICH)");
  }
  const std::size_t n = size();
  std::vector<double> probs(n, 0.0);
  std::vector<Status> statuses(exec::NumChunks(n, options_.grain),
                               Status::OK());
  exec::ParallelFor(pool_, n, options_.grain,
                    [&](std::size_t begin, std::size_t end) {
                      Status& status = statuses[begin / options_.grain];
                      for (std::size_t i = begin; i < end; ++i) {
                        if (i == query) continue;
                        auto p = MunichPairProbability(query, i, epsilon);
                        if (!p.ok()) {
                          status = p.status();
                          return;
                        }
                        probs[i] = p.ValueOrDie();
                      }
                    });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return probs;
}

Result<std::vector<std::size_t>> UncertainEngine::ProbabilisticRangeSearchMunich(
    std::size_t query, double epsilon, double tau) const {
  auto probs = MunichMatchProbabilities(query, epsilon);
  if (!probs.ok()) return probs.status();
  const std::vector<double>& p = probs.ValueOrDie();
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i == query) continue;
    if (p[i] >= tau) matches.push_back(i);
  }
  return matches;
}

Result<std::vector<Neighbor>> UncertainEngine::KNearestMunich(
    std::size_t query, double epsilon, std::size_t k) const {
  auto probs = MunichMatchProbabilities(query, epsilon);
  if (!probs.ok()) return probs.status();
  return SelectTopKByScore(probs.ValueOrDie(), query, k);
}

}  // namespace uts::query
