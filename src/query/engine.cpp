#include "query/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "distance/batch.hpp"
#include "distance/lp.hpp"
#include "exec/parallel_for.hpp"
#include "index/cascade.hpp"

namespace uts::query {

namespace detail {

void BoundedMotifHeap::Push(const MotifPair& pair) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(pair);
    std::push_heap(heap_.begin(), heap_.end(), Less);
    return;
  }
  if (Less(pair, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Less);
    heap_.back() = pair;
    std::push_heap(heap_.begin(), heap_.end(), Less);
  }
}

std::vector<MotifPair> BoundedMotifHeap::TakeSorted() {
  std::sort(heap_.begin(), heap_.end(), Less);
  return std::move(heap_);
}

std::vector<Neighbor> SelectKNearest(std::span<const double> distances,
                                     std::size_t exclude, std::size_t k) {
  std::vector<Neighbor> all;
  all.reserve(distances.size());
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (i == exclude) continue;
    all.push_back({i, distances[i]});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(take);
  return all;
}

}  // namespace detail

DistanceMatrixEngine::DistanceMatrixEngine(const ts::Dataset& dataset,
                                           EngineOptions options)
    : dataset_(&dataset),
      options_(options),
      dispatch_(&distance::ResolveDispatch(options.simd)) {
  if (options_.grain == 0) options_.grain = 1;
  if (options_.buffer_pool != nullptr && dataset.size() > 0 &&
      dataset[0].size() > 0 && dataset.HasUniformLength()) {
    // Storage-tier mode: pack straight from the dataset into pool-paged
    // blocks (one block buffer live at a time) instead of the dataset's
    // resident snapshot. Falls back to the resident mirror if the spill
    // log cannot be written — results are identical either way.
    auto paged = ts::SoaStore::FromRows(
        dataset.size(), dataset[0].size(),
        [&dataset](std::size_t r, std::span<double> out) {
          const auto& values = dataset[r].values();
          std::copy(values.begin(), values.end(), out.begin());
        },
        options_.buffer_pool, options_.block_rows);
    if (paged.ok()) {
      store_ = std::make_shared<const ts::SoaStore>(
          std::move(paged).ValueOrDie());
    }
  }
  if (store_ == nullptr) store_ = dataset.Packed();
  if (options_.index.enabled && store_ != nullptr && store_->rows() > 0 &&
      store_->stride() > 0) {
    synopsis_index_ = std::make_unique<index::SynopsisIndex>(
        *store_, options_.index.synopsis_coefficients);
  }
  if (options_.shared_pool != nullptr) {
    pool_ = options_.shared_pool;
    return;
  }
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads > 1) {
    owned_pool_ = std::make_unique<exec::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

DistanceMatrixEngine::~DistanceMatrixEngine() = default;

std::size_t DistanceMatrixEngine::threads() const {
  return pool_ ? pool_->size() : 1;
}

std::size_t DistanceMatrixEngine::MotifGrain(std::size_t n) const {
  const std::size_t t = threads();
  if (t <= 1) return options_.grain;
  return std::clamp<std::size_t>(n / (16 * t), 1, options_.grain);
}

// --- Generic callback paths --------------------------------------------------

namespace {

/// Indices (ascending, skipping `exclude`) whose value satisfies `keep`.
template <typename Keep>
std::vector<std::size_t> CollectMatches(std::span<const double> values,
                                        std::size_t exclude,
                                        const Keep& keep) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == exclude) continue;
    if (keep(values[i])) matches.push_back(i);
  }
  return matches;
}

/// Euclidean distance over the common prefix of two (possibly ragged)
/// series. Only the un-batched fallback paths can see mixed lengths; the
/// prefix keeps them deterministic instead of tripping the equal-size
/// precondition of the raw kernel (an out-of-bounds read with asserts off).
double PrefixEuclidean(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  return distance::Euclidean(a.first(n), b.first(n));
}

}  // namespace

std::vector<double> DistanceMatrixEngine::ComputeDense(
    std::size_t n, std::size_t exclude, const DistanceToFn& fn) const {
  std::vector<double> values(n, 0.0);
  exec::ParallelFor(pool_, n, options_.grain,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        if (i == exclude) continue;
                        values[i] = fn(i);
                      }
                    });
  return values;
}

std::vector<Neighbor> DistanceMatrixEngine::KNearest(
    std::size_t n, std::size_t exclude, std::size_t k,
    const DistanceToFn& distance_to) const {
  return detail::SelectKNearest(ComputeDense(n, exclude, distance_to),
                                exclude, k);
}

std::vector<std::size_t> DistanceMatrixEngine::RangeSearch(
    std::size_t n, std::size_t exclude, double epsilon,
    const DistanceToFn& distance_to) const {
  return CollectMatches(ComputeDense(n, exclude, distance_to), exclude,
                        [epsilon](double d) { return d <= epsilon; });
}

std::vector<std::size_t> DistanceMatrixEngine::ProbabilisticRangeSearch(
    std::size_t n, std::size_t exclude, double tau,
    const MatchProbabilityFn& probability_of) const {
  return CollectMatches(ComputeDense(n, exclude, probability_of), exclude,
                        [tau](double p) { return p >= tau; });
}

std::vector<MotifPair> DistanceMatrixEngine::TopKMotifs(
    std::size_t n, std::size_t k, const PairwiseDistanceFn& distance) const {
  const std::size_t grain = MotifGrain(n);
  std::vector<std::vector<MotifPair>> locals(exec::NumChunks(n, grain));
  exec::ParallelFor(pool_, n, grain,
                    [&](std::size_t begin, std::size_t end) {
                      detail::BoundedMotifHeap heap(k);
                      for (std::size_t a = begin; a < end; ++a) {
                        for (std::size_t b = a + 1; b < n; ++b) {
                          heap.Push({a, b, distance(a, b)});
                        }
                      }
                      locals[begin / grain] = heap.TakeSorted();
                    });
  detail::BoundedMotifHeap merged(k);
  for (const auto& local : locals) {
    for (const MotifPair& pair : local) merged.Push(pair);
  }
  return merged.TakeSorted();
}

// --- Euclidean batched paths -------------------------------------------------

namespace {

/// Relative inflation of τ² handed to the early-abandon filter. The exact
/// scan's τ is a rounded sqrt (τ² can understate the stored square by
/// ~3·eps relative) and the abandon kernel accumulates in a different order
/// than the exact per-row kernel (divergence ≲ 2n·eps relative, n up to
/// ~1e7). A partial sum above the inflated threshold therefore proves the
/// exact kernel's distance exceeds τ — abandoning can never drop a row the
/// full scan would keep.
constexpr double kAbandonSlack = 4e-9;

/// Work accounting of a path that scores every eligible candidate.
void ChargeFullScan(index::SearchCost* cost, std::size_t eligible) {
  if (cost == nullptr) return;
  cost->candidates_total += eligible;
  cost->candidates_touched += eligible;
}

}  // namespace

index::ExactScorer DistanceMatrixEngine::EuclideanCascadeScorer(
    std::span<const double> query, index::SearchCost* cost) const {
  // `query` must stay pinned by the caller for the scorer's lifetime; the
  // candidate row's block is pinned per call (free for resident stores).
  return [this, query, cost](std::size_t row, double tau) {
    const ts::StoreView view(*store_);
    const auto pin = ts::PinOrAbort(view, view.block_of(row));
    const std::size_t local = row - pin.first_row();
    double value = 0.0;
    const std::span<double> slot(&value, 1);
    if (std::isfinite(tau)) {
      const double threshold_sq = tau * tau * (1.0 + kAbandonSlack);
      dispatch_->squared_euclidean_early_abandon_range(
          query, pin.block(), threshold_sq, local, local + 1, slot);
      if (value > threshold_sq) {
        if (cost != nullptr) ++cost->abandoned_early;
        return std::numeric_limits<double>::infinity();
      }
    }
    // Final value always comes from the same per-row-deterministic kernel
    // the full scan uses (the abandon kernel's completed sums accumulate in
    // a different order under AVX2 and are *not* bitwise comparable).
    dispatch_->squared_euclidean_range(query, pin.block(), local, local + 1,
                                       slot);
    return std::sqrt(value);
  };
}

std::vector<Neighbor> DistanceMatrixEngine::IndexedKNearestEuclidean(
    std::size_t query_index, std::size_t k, index::SearchCost* cost) const {
  const ts::StoreView view(*store_);
  const auto query_pin = ts::PinRowOrAbort(view, query_index);
  const std::span<const double> query = query_pin.row();
  std::vector<double> bounds(store_->rows(), 0.0);
  synopsis_index_->EuclideanLowerBounds(synopsis_index_->Synopsize(query),
                                        bounds);
  return index::CascadeKNearest(bounds, query_index, k,
                                EuclideanCascadeScorer(query, cost), cost);
}

std::vector<Neighbor> DistanceMatrixEngine::KNearestEuclidean(
    std::size_t query_index, std::size_t k, index::SearchCost* cost) const {
  const std::size_t n = dataset_->size();
  assert(query_index < n);
  if (synopsis_index_ != nullptr) {
    return IndexedKNearestEuclidean(query_index, k, cost);
  }
  ChargeFullScan(cost, n - 1);
  if (store_ == nullptr) {
    const ts::TimeSeries& query = (*dataset_)[query_index];
    return KNearest(n, query_index, k, [&](std::size_t i) {
      return PrefixEuclidean(query.values(), (*dataset_)[i].values());
    });
  }
  const ts::StoreView view(*store_);
  const auto query_pin = ts::PinRowOrAbort(view, query_index);
  const std::span<const double> query = query_pin.row();
  std::vector<double> distances(n, 0.0);
  const auto chunks = ts::PartitionRows(view, options_.grain);
  exec::ParallelFor(
      pool_, chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          const ts::RowChunk& chunk = chunks[c];
          const auto pin = ts::PinOrAbort(view, chunk.block);
          const std::span<double> slot = std::span<double>(distances).subspan(
              chunk.begin, chunk.end - chunk.begin);
          dispatch_->squared_euclidean_range(query, pin.block(),
                                             chunk.begin - pin.first_row(),
                                             chunk.end - pin.first_row(), slot);
          for (double& v : slot) v = std::sqrt(v);
        }
      });
  return detail::SelectKNearest(distances, query_index, k);
}

std::vector<std::vector<Neighbor>> DistanceMatrixEngine::AllKNearestEuclidean(
    std::size_t k, std::size_t num_queries, index::SearchCost* cost) const {
  const std::size_t n = dataset_->size();
  const std::size_t queries =
      num_queries == 0 ? n : std::min(num_queries, n);
  std::vector<std::vector<Neighbor>> out(queries);
  if (synopsis_index_ != nullptr) {
    // Per-query cascades parallelized over queries (grain 1: pruning makes
    // per-query work uneven). Each query's cost lands in its own record;
    // the fold below is index-ordered, so the counters are deterministic at
    // every thread count.
    std::vector<index::SearchCost> per_query(queries);
    exec::ParallelFor(pool_, queries, /*grain=*/1,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t q = begin; q < end; ++q) {
                          out[q] = IndexedKNearestEuclidean(q, k,
                                                            &per_query[q]);
                        }
                      });
    if (cost != nullptr) {
      for (const index::SearchCost& record : per_query) {
        cost->Accumulate(record);
      }
    }
    return out;
  }
  if (n > 0) ChargeFullScan(cost, queries * (n - 1));
  if (store_ == nullptr) {
    for (std::size_t q = 0; q < queries; ++q) out[q] = KNearestEuclidean(q, k);
    return out;
  }
  // When every series is a query and the full matrix fits in memory,
  // exploit symmetry: (a-b) is exactly -(b-a) in IEEE arithmetic, so
  // d(q,c)² is bitwise d(c,q)² — compute the upper triangle only and
  // mirror the lower. Halves the distance work of the ground-truth build.
  constexpr std::size_t kMaxMatrixEntries = std::size_t{1} << 24;  // 128 MiB
  const ts::StoreView view(*store_);
  if (queries == n && n * n <= kMaxMatrixEntries) {
    std::vector<double> matrix(n * n, 0.0);
    // Phase 1: rows of the upper trapezoid, per query chunk. Block rows are
    // a multiple of kQueryBlock, so each query chunk sits inside one block;
    // the candidate span [chunk.begin, n) is walked block by block. Each
    // (q,c) pair is still one ordered accumulation chain, so the block cuts
    // never change a result bit.
    const auto query_chunks = ts::PartitionRows(view, distance::kQueryBlock);
    exec::ParallelFor(
        pool_, query_chunks.size(), /*grain=*/1,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (std::size_t qc = chunk_begin; qc < chunk_end; ++qc) {
            const ts::RowChunk& chunk = query_chunks[qc];
            const auto query_pin = ts::PinOrAbort(view, chunk.block);
            const std::size_t query_first = query_pin.first_row();
            for (std::size_t cb = chunk.block; cb < view.num_blocks(); ++cb) {
              const auto cand_pin = ts::PinOrAbort(view, cb);
              const std::size_t cand_first = cand_pin.first_row();
              const std::size_t cand_begin =
                  std::max(chunk.begin, cand_first);
              const std::size_t cand_end =
                  cand_first + view.block_row_count(cb);
              dispatch_->squared_euclidean_multi_query(
                  query_pin.block(), chunk.begin - query_first,
                  chunk.end - query_first, cand_pin.block(),
                  cand_begin - cand_first, cand_end - cand_first,
                  std::span<double>(matrix).subspan(chunk.begin * n +
                                                    cand_begin),
                  n);
            }
          }
        });
    // Phase 2: mirror the lower triangle (ParallelFor is a barrier, so the
    // sources are complete).
    exec::ParallelFor(pool_, n, /*grain=*/64,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t q = begin; q < end; ++q) {
                          double* row = matrix.data() + q * n;
                          for (std::size_t c = 0; c < q; ++c) {
                            row[c] = matrix[c * n + q];
                          }
                        }
                      });
    // Phase 3: sqrt each owned row in place (selection must order final
    // metric values, like the sequential reference), then select.
    exec::ParallelFor(
        pool_, n, /*grain=*/distance::kQueryBlock,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t q = begin; q < end; ++q) {
            double* row = matrix.data() + q * n;
            for (std::size_t c = 0; c < n; ++c) row[c] = std::sqrt(row[c]);
            out[q] = detail::SelectKNearest(
                std::span<const double>(row, n), q, k);
          }
        });
    return out;
  }

  // Streaming fallback (query prefix, or matrix too large): parallelize
  // over query chunks; the multi-query kernel loads each candidate row once
  // per kQueryBlock queries, and each chunk writes only its own out[q]
  // slots. Candidates are swept block by block into the chunk's buffer.
  const auto query_chunks =
      ts::PartitionRowRange(view, 0, queries, distance::kQueryBlock);
  exec::ParallelFor(
      pool_, query_chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t qc = chunk_begin; qc < chunk_end; ++qc) {
          const ts::RowChunk& chunk = query_chunks[qc];
          const auto query_pin = ts::PinOrAbort(view, chunk.block);
          const std::size_t query_first = query_pin.first_row();
          std::vector<double> block((chunk.end - chunk.begin) * n, 0.0);
          for (std::size_t cb = 0; cb < view.num_blocks(); ++cb) {
            const auto cand_pin = ts::PinOrAbort(view, cb);
            const std::size_t cand_first = cand_pin.first_row();
            dispatch_->squared_euclidean_multi_query(
                query_pin.block(), chunk.begin - query_first,
                chunk.end - query_first, cand_pin.block(), 0,
                view.block_row_count(cb),
                std::span<double>(block).subspan(cand_first), n);
          }
          for (double& v : block) v = std::sqrt(v);
          for (std::size_t q = chunk.begin; q < chunk.end; ++q) {
            out[q] = detail::SelectKNearest(
                std::span<const double>(block).subspan((q - chunk.begin) * n,
                                                       n),
                q, k);
          }
        }
      });
  return out;
}

std::vector<std::size_t> DistanceMatrixEngine::RangeSearchEuclidean(
    std::size_t query_index, double epsilon, index::SearchCost* cost) const {
  const std::size_t n = dataset_->size();
  assert(query_index < n);
  if (synopsis_index_ != nullptr) {
    const ts::StoreView view(*store_);
    const auto query_pin = ts::PinRowOrAbort(view, query_index);
    const std::span<const double> query = query_pin.row();
    std::vector<double> bounds(store_->rows(), 0.0);
    synopsis_index_->EuclideanLowerBounds(synopsis_index_->Synopsize(query),
                                          bounds);
    return index::CascadeRangeSearch(bounds, query_index, epsilon,
                                     EuclideanCascadeScorer(query, cost),
                                     cost);
  }
  ChargeFullScan(cost, n - 1);
  if (store_ == nullptr) {
    const ts::TimeSeries& query = (*dataset_)[query_index];
    return RangeSearch(n, query_index, epsilon, [&](std::size_t i) {
      return PrefixEuclidean(query.values(), (*dataset_)[i].values());
    });
  }
  const ts::StoreView view(*store_);
  const auto query_pin = ts::PinRowOrAbort(view, query_index);
  const std::span<const double> query = query_pin.row();
  std::vector<double> distances(n, 0.0);
  const auto chunks = ts::PartitionRows(view, options_.grain);
  exec::ParallelFor(
      pool_, chunks.size(), /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          const ts::RowChunk& chunk = chunks[c];
          const auto pin = ts::PinOrAbort(view, chunk.block);
          const std::span<double> slot = std::span<double>(distances).subspan(
              chunk.begin, chunk.end - chunk.begin);
          dispatch_->squared_euclidean_range(query, pin.block(),
                                             chunk.begin - pin.first_row(),
                                             chunk.end - pin.first_row(), slot);
          for (double& v : slot) v = std::sqrt(v);
        }
      });
  return CollectMatches(distances, query_index,
                        [epsilon](double d) { return d <= epsilon; });
}

std::vector<MotifPair> DistanceMatrixEngine::TopKMotifsEuclidean(
    std::size_t k) const {
  const std::size_t n = dataset_->size();
  if (store_ == nullptr) {
    return TopKMotifs(n, k, [&](std::size_t a, std::size_t b) {
      return PrefixEuclidean((*dataset_)[a].values(),
                             (*dataset_)[b].values());
    });
  }
  // Streams rows of the SoA store through the generic chunked heap/merge;
  // each pair is ranked by its final metric value, exactly like the
  // sequential reference. Row pins are taken per pair (free when resident).
  const ts::StoreView view(*store_);
  return TopKMotifs(n, k, [view](std::size_t a, std::size_t b) {
    const auto pin_a = ts::PinRowOrAbort(view, a);
    const auto pin_b = ts::PinRowOrAbort(view, b);
    return std::sqrt(distance::SquaredEuclidean(pin_a.row(), pin_b.row()));
  });
}

}  // namespace uts::query
