/// \file dataset.hpp
/// \brief A named collection of labeled time series (a UCR-style dataset).
///
/// The paper joins the UCR training and testing splits: "The training and
/// testing sets were joined together, and we obtained on average 502 time
/// series of length 290 per dataset" (Section 4.1.1).

#ifndef UTS_TS_DATASET_HPP_
#define UTS_TS_DATASET_HPP_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "ts/soa_store.hpp"
#include "ts/time_series.hpp"

namespace uts::ts {

/// \brief Summary characteristics of a dataset.
struct DatasetInfo {
  std::string name;
  std::size_t num_series = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double avg_length = 0.0;
  std::size_t num_classes = 0;
  /// Mean pairwise Euclidean distance between (z-normalized) series; the
  /// paper's Section 6 links low values to low matching accuracy.
  double avg_pairwise_distance = 0.0;
};

/// \brief A named, ordered collection of time series.
class Dataset {
 public:
  Dataset() = default;

  /// Construct with a name and its member series.
  explicit Dataset(std::string name, std::vector<TimeSeries> series = {})
      : name_(std::move(name)), series_(std::move(series)) {}

  // The packed-store cache is per-instance state, never shared by copies
  // or moves (holders of a Packed() snapshot keep it alive themselves).
  Dataset(const Dataset& other)
      : name_(other.name_), series_(other.series_) {}
  Dataset& operator=(const Dataset& other) {
    if (this != &other) {
      name_ = other.name_;
      series_ = other.series_;
      ResetPacked();
    }
    return *this;
  }
  Dataset(Dataset&& other) noexcept
      : name_(std::move(other.name_)), series_(std::move(other.series_)) {
    other.ResetPacked();  // its cache no longer mirrors its (empty) series
  }
  Dataset& operator=(Dataset&& other) noexcept {
    name_ = std::move(other.name_);
    series_ = std::move(other.series_);
    ResetPacked();
    other.ResetPacked();
    return *this;
  }

  /// Dataset name, e.g. "GunPoint".
  const std::string& name() const { return name_; }

  /// Number of member series.
  std::size_t size() const { return series_.size(); }

  /// True iff the dataset is empty.
  bool empty() const { return series_.empty(); }

  /// Member series i; precondition i < size().
  const TimeSeries& operator[](std::size_t i) const {
    assert(i < series_.size());
    return series_[i];
  }
  /// Mutable access drops the packed cache (the caller may mutate values
  /// through the reference), so prefer const access on read paths — e.g.
  /// std::as_const(d)[i] — when interleaving with Euclidean queries, or
  /// each query rebuilds the SoA mirror. Mutating through a reference
  /// retained across a later Packed() rebuild leaves that cache stale;
  /// re-index after mutating instead of holding references.
  TimeSeries& operator[](std::size_t i) {
    assert(i < series_.size());
    ResetPacked();
    return series_[i];
  }

  /// All member series.
  const std::vector<TimeSeries>& series() const { return series_; }

  /// Append a series.
  void Add(TimeSeries series) {
    ResetPacked();
    series_.push_back(std::move(series));
  }

  /// Contiguous SoA mirror of the collection (lazily built, cached, and
  /// synchronized), or nullptr when the series do not share one length.
  /// Mutation through `Add` / the non-const `operator[]` drops the cache;
  /// holders of a previously returned snapshot keep it alive and simply
  /// stop reflecting the mutated dataset.
  std::shared_ptr<const SoaStore> Packed() const;

  auto begin() const { return series_.begin(); }
  auto end() const { return series_.end(); }

  /// All values of all series have equal length.
  bool HasUniformLength() const;

  /// Distinct class labels and their member counts.
  std::map<int, std::size_t> ClassHistogram() const;

  /// Compute summary characteristics. `pairwise_sample_limit` caps the
  /// number of series used for the O(N²) mean pairwise distance (0 = all).
  DatasetInfo Summarize(std::size_t pairwise_sample_limit = 64) const;

  /// New dataset holding the first `count` series, each truncated to
  /// `length` points — the paper's Figure 4 setting ("truncating it to 60
  /// time series of length 6"). Fails if the dataset is smaller than
  /// requested.
  Result<Dataset> Truncated(std::size_t count, std::size_t length) const;

  /// New dataset with every series z-normalized.
  Dataset ZNormalizedCopy() const;

  /// Concatenation of two datasets (e.g. UCR train + test split).
  static Dataset Merge(std::string name, const Dataset& a, const Dataset& b);

 private:
  void ResetPacked() {
    std::lock_guard<std::mutex> lock(packed_mutex_);
    packed_.reset();
    packed_unpackable_ = false;
  }

  std::string name_;
  std::vector<TimeSeries> series_;
  /// Lazily built SoA mirror; invalidated by mutation, skipped by copies.
  /// The flag memoizes "cannot pack" (ragged/empty) so repeated Packed()
  /// calls skip the O(n) uniform-length scan.
  mutable std::mutex packed_mutex_;
  mutable std::shared_ptr<const SoaStore> packed_;
  mutable bool packed_unpackable_ = false;
};

}  // namespace uts::ts

#endif  // UTS_TS_DATASET_HPP_
