/// \file block_log.hpp
/// \brief Append-only on-disk log of spilled storage blocks.
///
/// The buffer pool's backing store: every block admitted to a
/// `ts::BufferPool` is written here once, at admission time, and re-read by
/// offset whenever a fault brings an evicted block back. Append-only by
/// design — a block's bytes are immutable after the write, so a refault
/// always reproduces exactly the bytes that were evicted and paged results
/// stay bitwise identical to the resident path (docs/ARCHITECTURE.md §7).
///
/// The log lives in an unlinked temporary file (created with mkstemp, then
/// unlinked), so crashed processes leak no spill files and the space is
/// reclaimed the moment the log is destroyed.
///
/// Thread-safety: none. The owning BufferPool serializes all access under
/// its mutex.

#ifndef UTS_TS_BLOCK_LOG_HPP_
#define UTS_TS_BLOCK_LOG_HPP_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace uts::ts {

/// \brief Append-only spill file handing out stable (offset, size) block
/// addresses.
class BlockLog {
 public:
  /// Create the unlinked spill file in `dir` (empty = $TMPDIR, else /tmp).
  static Result<BlockLog> Open(const std::string& dir);

  BlockLog() = default;
  ~BlockLog();

  BlockLog(BlockLog&& other) noexcept;
  BlockLog& operator=(BlockLog&& other) noexcept;
  BlockLog(const BlockLog&) = delete;
  BlockLog& operator=(const BlockLog&) = delete;

  /// True iff the spill file is open.
  bool open() const { return fd_ >= 0; }

  /// Append `size` bytes; returns the stable offset the block lives at.
  Result<std::uint64_t> Append(const void* data, std::size_t size);

  /// Read `size` bytes from `offset` (a value returned by Append).
  Status ReadAt(std::uint64_t offset, void* data, std::size_t size) const;

  /// Total bytes appended so far.
  std::uint64_t size_bytes() const { return end_; }

 private:
  int fd_ = -1;
  std::uint64_t end_ = 0;
};

}  // namespace uts::ts

#endif  // UTS_TS_BLOCK_LOG_HPP_
