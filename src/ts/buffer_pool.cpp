#include "ts/buffer_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace uts::ts {

BufferPool::BufferPool(Options options, BlockLog log)
    : options_(std::move(options)), log_(std::move(log)) {}

BufferPool::~BufferPool() {
  // Pages are owned by their stores, which must be destroyed (and Drop their
  // pages) before the pool they share. Engines hold the pool by shared_ptr
  // alongside the store, which enforces that order.
  assert(pages_.empty());
}

Result<std::shared_ptr<BufferPool>> BufferPool::Create(Options options) {
  UTS_ASSIGN_OR_RETURN(BlockLog log, BlockLog::Open(options.spill_dir));
  return std::shared_ptr<BufferPool>(
      new BufferPool(std::move(options), std::move(log)));
}

Status BufferPool::Admit(Page* page, std::vector<double> data) {
  assert(page != nullptr);
  std::lock_guard<std::mutex> guard(mutex_);
  assert(page->doubles == 0 && page->data.empty());
  const std::size_t bytes = data.size() * sizeof(double);
  UTS_ASSIGN_OR_RETURN(page->log_offset, log_.Append(data.data(), bytes));
  page->doubles = data.size();
  page->data = std::move(data);
  page->referenced = true;
  pages_.push_back(page);
  stats_.admits += 1;
  stats_.spilled_bytes += bytes;
  stats_.resident_bytes += bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  EvictToBudgetLocked(/*keep=*/nullptr);
  return Status::OK();
}

Result<const double*> BufferPool::Pin(Page* page) {
  assert(page != nullptr);
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.pins += 1;
  if (page->data.empty() && page->doubles > 0) {
    // Fault: restore the exact bytes written at admission. The read happens
    // under the pool mutex — see the thread-safety note in the header.
    std::vector<double> data(page->doubles);
    UTS_RETURN_NOT_OK(
        log_.ReadAt(page->log_offset, data.data(), data.size() * sizeof(double)));
    page->data = std::move(data);
    stats_.faults += 1;
    stats_.resident_bytes += page->doubles * sizeof(double);
    stats_.peak_resident_bytes =
        std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
    EvictToBudgetLocked(/*keep=*/page);
  }
  page->pin_count += 1;
  page->referenced = true;
  return static_cast<const double*>(page->data.data());
}

void BufferPool::Unpin(Page* page) {
  assert(page != nullptr);
  std::lock_guard<std::mutex> guard(mutex_);
  assert(page->pin_count > 0);
  page->pin_count -= 1;
  if (page->pin_count == 0 && stats_.resident_bytes > options_.budget_bytes) {
    // A pin released past budget (pins overshoot by design): trim now rather
    // than waiting for the next admission/fault.
    EvictToBudgetLocked(/*keep=*/nullptr);
  }
}

void BufferPool::Drop(Page* page) {
  assert(page != nullptr);
  std::lock_guard<std::mutex> guard(mutex_);
  assert(page->pin_count == 0);
  auto it = std::find(pages_.begin(), pages_.end(), page);
  if (it == pages_.end()) return;
  const std::size_t index = static_cast<std::size_t>(it - pages_.begin());
  if (!page->data.empty()) {
    stats_.resident_bytes -= page->data.size() * sizeof(double);
    page->data.clear();
    page->data.shrink_to_fit();
  }
  pages_.erase(it);
  if (clock_hand_ > index) clock_hand_ -= 1;
  if (!pages_.empty()) clock_hand_ %= pages_.size();
  else clock_hand_ = 0;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

void BufferPool::EvictToBudgetLocked(const Page* keep) {
  if (pages_.empty()) return;
  // Second-chance clock: one full lap grants every referenced page its
  // reprieve, a second lap evicts whatever is still unpinned. Beyond two
  // laps nothing changes, so stop there even if still over budget (the
  // remainder is pinned, which the budget does not bound).
  std::size_t steps = 2 * pages_.size();
  while (stats_.resident_bytes > options_.budget_bytes && steps-- > 0) {
    Page* victim = pages_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % pages_.size();
    if (victim == keep || victim->pin_count > 0 || victim->data.empty()) {
      continue;
    }
    if (victim->referenced) {
      victim->referenced = false;
      continue;
    }
    stats_.resident_bytes -= victim->data.size() * sizeof(double);
    victim->data.clear();
    victim->data.shrink_to_fit();
    stats_.evictions += 1;
  }
}

}  // namespace uts::ts
