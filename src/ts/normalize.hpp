/// \file normalize.hpp
/// \brief Z-normalization and related preprocessing.
///
/// "Where not specified otherwise, we assume normalized time series with zero
/// mean and unit variance" (Section 2). Normalization is applied to the exact
/// series before perturbation, exactly as in the paper's setup.

#ifndef UTS_TS_NORMALIZE_HPP_
#define UTS_TS_NORMALIZE_HPP_

#include "ts/time_series.hpp"

namespace uts::ts {

/// \brief Moments of a series used by normalization.
struct SeriesMoments {
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
};

/// \brief Mean and population standard deviation of the series values.
SeriesMoments ComputeMoments(const TimeSeries& series);

/// \brief Z-normalize in place: subtract the mean, divide by the population
/// standard deviation.
///
/// A series with (near-)zero variance cannot be scaled; it is centered only
/// (all values become ~0), which matches the common convention for constant
/// series and keeps downstream distances well defined.
void ZNormalizeInPlace(TimeSeries& series, double epsilon = 1e-12);

/// \brief Z-normalized copy of the series.
TimeSeries ZNormalized(const TimeSeries& series, double epsilon = 1e-12);

/// \brief Min-max rescale in place onto [lo, hi]; constant series map to the
/// midpoint.
void MinMaxNormalizeInPlace(TimeSeries& series, double lo = 0.0,
                            double hi = 1.0);

}  // namespace uts::ts

#endif  // UTS_TS_NORMALIZE_HPP_
