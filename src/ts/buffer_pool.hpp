/// \file buffer_pool.hpp
/// \brief Pin-counted block cache with clock eviction over an append-only
/// spill log — the storage tier behind larger-than-RAM `ts::SoaStore`s.
///
/// Stores split their columns into fixed-size blocks (ts/row_block.hpp) and
/// register each block as a `Page` here. Admission writes the block's bytes
/// to the pool's `ts::BlockLog` immediately — eviction is then a pure drop
/// of the in-memory copy, and a later fault re-reads exactly the bytes that
/// were written, so paging can never change a result bit.
///
/// ## Pin discipline
///
/// `Pin` returns the block's resident base pointer and guarantees it stays
/// valid until the matching `Unpin` (callers use the RAII wrappers of
/// ts/store_view.hpp rather than these raw calls). Pins always succeed,
/// even past the budget: correctness is never traded for the cap — the
/// budget bounds the *unpinned* cache, and a kernel that momentarily pins
/// more blocks than fit (e.g. the four-store PROUD general sweep) simply
/// overshoots until its pins drop. Eviction considers only unpinned pages,
/// second-chance (clock) order.
///
/// ## Thread-safety
///
/// Every method takes one internal mutex; faults read the spill log while
/// holding it. Concurrent pins from ParallelFor workers therefore serialize
/// on the pool — acceptable because the engines pin once per chunk (a few
/// MiB of kernel work per lock acquisition), and trivially race-free.
///
/// ## Determinism
///
/// The pool changes *where* block bytes live, never their values: admission
/// copies, eviction drops, faults restore the admitted bytes. Combined with
/// block geometry being a pure function of the stride, every engine result
/// over a paged store is bitwise identical to the resident store at any
/// budget and thread count (tests/out_of_core_test.cpp pins this).

#ifndef UTS_TS_BUFFER_POOL_HPP_
#define UTS_TS_BUFFER_POOL_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "ts/block_log.hpp"

namespace uts::ts {

/// \brief Shared block cache: pages are owned by their stores and
/// registered here; the pool owns the budget, the clock and the spill log.
class BufferPool {
 public:
  /// \brief Pool configuration.
  struct Options {
    /// Bytes of block payload the pool may keep resident beyond what pins
    /// require. 0 = evict everything unpinned (useful in stress tests).
    std::size_t budget_bytes = std::size_t{256} << 20;

    /// Directory of the spill file (empty = $TMPDIR, else /tmp). The file
    /// is unlinked at creation, so nothing survives the pool.
    std::string spill_dir;
  };

  /// \brief Lifecycle counters; snapshot via stats().
  struct Stats {
    std::uint64_t admits = 0;        ///< Blocks registered.
    std::uint64_t faults = 0;        ///< Pins that re-read the spill log.
    std::uint64_t evictions = 0;     ///< Resident copies dropped.
    std::uint64_t pins = 0;          ///< Total Pin calls.
    std::uint64_t spilled_bytes = 0; ///< Bytes appended to the log.
    std::size_t resident_bytes = 0;  ///< Current in-memory payload bytes.
    std::size_t peak_resident_bytes = 0;  ///< High-water resident_bytes.
  };

  /// \brief One registered block. Owned by the store that created it (at a
  /// stable address); all fields are managed by the pool under its mutex.
  class Page {
   public:
    Page() = default;
    Page(const Page&) = delete;
    Page& operator=(const Page&) = delete;

   private:
    friend class BufferPool;
    std::vector<double> data;       ///< Resident copy; empty when evicted.
    std::size_t doubles = 0;        ///< Payload element count.
    std::uint64_t log_offset = 0;   ///< Address in the spill log.
    std::uint32_t pin_count = 0;    ///< Outstanding pins.
    bool referenced = false;        ///< Clock second-chance bit.
  };

  /// Create a pool and open its spill log.
  static Result<std::shared_ptr<BufferPool>> Create(Options options);

  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Register `page` with `data` as its immutable payload: the bytes are
  /// appended to the spill log now (so eviction is a pure drop), the copy
  /// stays resident, and unpinned pages are evicted down to the budget.
  Status Admit(Page* page, std::vector<double> data);

  /// Pin the page resident and return its base pointer, faulting the
  /// payload back from the spill log when evicted. Always succeeds while
  /// the log is healthy, budget notwithstanding (see file comment).
  Result<const double*> Pin(Page* page);

  /// Release one pin. The payload stays cached until eviction needs it.
  void Unpin(Page* page);

  /// Unregister `page` (store destruction); frees its resident copy. The
  /// page must have no outstanding pins.
  void Drop(Page* page);

  /// The configured budget in bytes.
  std::size_t budget_bytes() const { return options_.budget_bytes; }

  /// Counter snapshot (thread-safe).
  Stats stats() const;

 private:
  explicit BufferPool(Options options, BlockLog log);

  /// Drop unpinned, unreferenced resident pages (clock order) until
  /// resident_bytes_ <= budget or nothing evictable remains. `keep` is
  /// exempt (the page being admitted/faulted this call).
  void EvictToBudgetLocked(const Page* keep);

  mutable std::mutex mutex_;
  Options options_;
  BlockLog log_;
  std::vector<Page*> pages_;  ///< Clock ring of registered pages.
  std::size_t clock_hand_ = 0;
  Stats stats_;
};

}  // namespace uts::ts

#endif  // UTS_TS_BUFFER_POOL_HPP_
