#include "ts/block_log.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace uts::ts {

namespace {

std::string ResolveSpillDir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir != nullptr && tmpdir[0] != '\0') return tmpdir;
  return "/tmp";
}

}  // namespace

Result<BlockLog> BlockLog::Open(const std::string& dir) {
  std::string path = ResolveSpillDir(dir) + "/uncertts-spill-XXXXXX";
  // mkstemp wants a mutable template; the vector inside std::string is one.
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return Status::IOError("cannot create spill file in '" + path +
                           "': " + std::strerror(errno));
  }
  // Unlink immediately: the kernel keeps the inode alive for this fd, and a
  // crash can never leave a stale spill file behind.
  ::unlink(path.c_str());
  BlockLog log;
  log.fd_ = fd;
  return log;
}

BlockLog::~BlockLog() {
  if (fd_ >= 0) ::close(fd_);
}

BlockLog::BlockLog(BlockLog&& other) noexcept
    : fd_(other.fd_), end_(other.end_) {
  other.fd_ = -1;
  other.end_ = 0;
}

BlockLog& BlockLog::operator=(BlockLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    end_ = other.end_;
    other.fd_ = -1;
    other.end_ = 0;
  }
  return *this;
}

Result<std::uint64_t> BlockLog::Append(const void* data, std::size_t size) {
  if (fd_ < 0) return Status::IOError("spill log is not open");
  const std::uint64_t offset = end_;
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  std::uint64_t at = offset;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("spill write failed: ") +
                             std::strerror(errno));
    }
    p += n;
    at += static_cast<std::uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  end_ = offset + size;
  return offset;
}

Status BlockLog::ReadAt(std::uint64_t offset, void* data,
                        std::size_t size) const {
  if (fd_ < 0) return Status::IOError("spill log is not open");
  char* p = static_cast<char*>(data);
  std::size_t left = size;
  std::uint64_t at = offset;
  while (left > 0) {
    const ssize_t n = ::pread(fd_, p, left, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("spill read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption("spill read past the end of the log");
    }
    p += n;
    at += static_cast<std::uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace uts::ts
