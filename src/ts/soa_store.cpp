#include "ts/soa_store.hpp"

#include <string>

namespace uts::ts {

namespace {

Status ValidateShape(std::size_t value_count, std::size_t stride) {
  if (stride == 0 && value_count != 0) {
    return Status::InvalidArgument(
        "SoaStore: stride must be > 0 for a non-empty store");
  }
  if (stride > 0 && value_count % stride != 0) {
    return Status::InvalidArgument(
        "SoaStore: value count " + std::to_string(value_count) +
        " is not a multiple of stride " + std::to_string(stride));
  }
  return Status::OK();
}

std::size_t EffectiveBlockRows(std::size_t stride, std::size_t block_rows) {
  if (block_rows > 0) return block_rows;
  return DefaultBlockRows(stride);
}

}  // namespace

Result<SoaStore> SoaStore::FromPacked(std::vector<double> values,
                                      std::size_t stride,
                                      std::shared_ptr<BufferPool> pool,
                                      std::size_t block_rows) {
  UTS_RETURN_NOT_OK(ValidateShape(values.size(), stride));
  SoaStore store;
  store.stride_ = stride;
  store.rows_ = stride == 0 ? 0 : values.size() / stride;
  if (pool == nullptr || store.rows_ == 0) {
    store.values_ = std::move(values);
    store.block_rows_ = store.rows_;
    return store;
  }
  store.pool_ = std::move(pool);
  store.block_rows_ = EffectiveBlockRows(stride, block_rows);
  const std::size_t blocks = store.num_blocks();
  store.pages_.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t first = store.block_first_row(b);
    const std::size_t count = store.block_row_count(b);
    std::vector<double> payload(
        values.begin() + static_cast<std::ptrdiff_t>(first * stride),
        values.begin() + static_cast<std::ptrdiff_t>((first + count) * stride));
    auto page = std::make_unique<BufferPool::Page>();
    UTS_RETURN_NOT_OK(store.pool_->Admit(page.get(), std::move(payload)));
    store.pages_.push_back(std::move(page));
  }
  return store;
}

Result<SoaStore> SoaStore::FromRows(std::size_t rows, std::size_t stride,
                                    const RowFn& fill,
                                    std::shared_ptr<BufferPool> pool,
                                    std::size_t block_rows) {
  if (rows > 0 && stride == 0) {
    return Status::InvalidArgument(
        "SoaStore: stride must be > 0 for a non-empty store");
  }
  if (pool == nullptr || rows == 0) {
    std::vector<double> values(rows * stride);
    for (std::size_t r = 0; r < rows; ++r) {
      fill(r, std::span<double>(values.data() + r * stride, stride));
    }
    return FromPacked(std::move(values), stride);
  }
  SoaStore store;
  store.stride_ = stride;
  store.rows_ = rows;
  store.pool_ = std::move(pool);
  store.block_rows_ = EffectiveBlockRows(stride, block_rows);
  const std::size_t blocks = store.num_blocks();
  store.pages_.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t first = store.block_first_row(b);
    const std::size_t count = store.block_row_count(b);
    std::vector<double> payload(count * stride);
    for (std::size_t r = 0; r < count; ++r) {
      fill(first + r, std::span<double>(payload.data() + r * stride, stride));
    }
    auto page = std::make_unique<BufferPool::Page>();
    UTS_RETURN_NOT_OK(store.pool_->Admit(page.get(), std::move(payload)));
    store.pages_.push_back(std::move(page));
  }
  return store;
}

}  // namespace uts::ts
