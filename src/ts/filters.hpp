/// \file filters.hpp
/// \brief Moving-average family of noise filters (Section 5 of the paper).
///
/// Four filters, Equations 15–18:
///
///  * MA    — plain moving average, window 2w+1 (Eq. 15);
///  * EMA   — exponentially weighted moving average, decay λ (Eq. 16);
///  * UMA   — Uncertain Moving Average: observations divided by their error
///            standard deviation before averaging (Eq. 17);
///  * UEMA  — Uncertain Exponential Moving Average: exponential weights and
///            division by the error standard deviation (Eq. 18).
///
/// UMA and UEMA are the paper's proposed measures: the Euclidean distance is
/// computed on the filtered sequences (Section 5.1, last paragraph).
///
/// Boundary policy: the paper's equations index j from i-w to i+w without
/// specifying edge handling; we truncate the window at the sequence
/// boundaries and normalize by the weights actually present, which keeps the
/// filter unbiased at the edges. `FilterOptions::strict_paper_denominator`
/// switches to the literal 2w+1 denominator of Eq. 15/17 for exact-equation
/// comparisons (edge values are then attenuated).

#ifndef UTS_TS_FILTERS_HPP_
#define UTS_TS_FILTERS_HPP_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "ts/time_series.hpp"

namespace uts::ts {

/// \brief Shared options for the moving-average family.
struct FilterOptions {
  /// Half-window w; the window covers 2w+1 points (Eq. 15). w = 0 makes
  /// every filter the identity (UMA/UEMA then "degenerate to the simple
  /// Euclidean distance", Section 5.2).
  std::size_t half_window = 2;

  /// Exponential decay λ (Eq. 16/18); only used by EMA/UEMA. λ = 0 gives
  /// uniform weights (EMA == MA, UEMA == UMA).
  double lambda = 1.0;

  /// Use the literal 2w+1 denominator from Eq. 15/17 even at sequence edges
  /// (instead of renormalizing over the truncated window).
  bool strict_paper_denominator = false;
};

/// \brief Moving average of `values` (Eq. 15).
std::vector<double> MovingAverage(std::span<const double> values,
                                  const FilterOptions& options);

/// \brief Exponential moving average of `values` (Eq. 16).
std::vector<double> ExponentialMovingAverage(std::span<const double> values,
                                             const FilterOptions& options);

/// \brief Uncertain Moving Average (Eq. 17): each observation v_j is divided
/// by its error standard deviation s_j, de-emphasizing noisier points.
///
/// `stddevs` must have the same length as `values` and be strictly positive.
Result<std::vector<double>> UncertainMovingAverage(
    std::span<const double> values, std::span<const double> stddevs,
    const FilterOptions& options);

/// \brief Uncertain Exponential Moving Average (Eq. 18).
Result<std::vector<double>> UncertainExponentialMovingAverage(
    std::span<const double> values, std::span<const double> stddevs,
    const FilterOptions& options);

/// \name TimeSeries conveniences
/// Preserve label and id of the input.
/// \{
TimeSeries MovingAverage(const TimeSeries& series,
                         const FilterOptions& options);
TimeSeries ExponentialMovingAverage(const TimeSeries& series,
                                    const FilterOptions& options);
Result<TimeSeries> UncertainMovingAverage(const TimeSeries& series,
                                          std::span<const double> stddevs,
                                          const FilterOptions& options);
Result<TimeSeries> UncertainExponentialMovingAverage(
    const TimeSeries& series, std::span<const double> stddevs,
    const FilterOptions& options);
/// \}

}  // namespace uts::ts

#endif  // UTS_TS_FILTERS_HPP_
