/// \file time_series.hpp
/// \brief The certain (exact-valued) time-series container.
///
/// "A time series S is defined as S = <s1, s2, ..., sn> where n is the length
/// of S, and si is the real valued number of S at timestamp i" (Section 2).
/// Sampling is assumed constant-rate with discrete timestamps, so the
/// container is a plain value vector plus identification metadata.

#ifndef UTS_TS_TIME_SERIES_HPP_
#define UTS_TS_TIME_SERIES_HPP_

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace uts::ts {

/// \brief A fixed-length sequence of real values with an optional class
/// label (UCR datasets are classification datasets) and an identifier.
class TimeSeries {
 public:
  /// Label value meaning "no class information".
  static constexpr int kNoLabel = -1;

  TimeSeries() = default;

  /// Construct from values; label/id are optional metadata.
  explicit TimeSeries(std::vector<double> values, int label = kNoLabel,
                      std::string id = {})
      : values_(std::move(values)), label_(label), id_(std::move(id)) {}

  /// Number of timestamps.
  std::size_t size() const { return values_.size(); }

  /// True iff the series has no points.
  bool empty() const { return values_.empty(); }

  /// Value at timestamp i (0-based); precondition i < size().
  double operator[](std::size_t i) const {
    assert(i < values_.size());
    return values_[i];
  }

  /// Mutable value at timestamp i; precondition i < size().
  double& operator[](std::size_t i) {
    assert(i < values_.size());
    return values_[i];
  }

  /// Read-only view of all values.
  std::span<const double> values() const { return values_; }

  /// Mutable access to the underlying vector.
  std::vector<double>& mutable_values() { return values_; }

  /// Class label (kNoLabel when absent).
  int label() const { return label_; }

  /// Set the class label.
  void set_label(int label) { label_ = label; }

  /// Identifier, e.g. "GunPoint/17".
  const std::string& id() const { return id_; }

  /// Set the identifier.
  void set_id(std::string id) { id_ = std::move(id); }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  friend bool operator==(const TimeSeries& a, const TimeSeries& b) {
    return a.values_ == b.values_ && a.label_ == b.label_;
  }

 private:
  std::vector<double> values_;
  int label_ = kNoLabel;
  std::string id_;
};

}  // namespace uts::ts

#endif  // UTS_TS_TIME_SERIES_HPP_
