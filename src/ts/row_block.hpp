/// \file row_block.hpp
/// \brief One pinned, contiguous block of SoA rows — the only shape the
/// distance kernels accept.
///
/// The storage tier (ts::SoaStore + ts::BufferPool) splits a collection
/// into fixed-size column blocks so larger-than-RAM datasets can page; the
/// kernels of distance/batch.hpp and distance/simd.hpp never see a store,
/// only a `RowBlock`: a borrowed (data, stride, rows) triple that is
/// guaranteed contiguous and resident for as long as the caller holds the
/// pin that produced it (ts::StoreView::Pin). Row indices passed alongside
/// a block are always *block-local*.
///
/// The block geometry below is shared by the packer and the kernels: blocks
/// are a whole number of candidate tiles (kCandidateTileBytes) and a
/// multiple of the multi-query block (kQueryBlock), so the engines'
/// block-clipped ParallelFor partitions tile exactly like the resident
/// path. Geometry is a pure function of the stride — never of the memory
/// budget or thread count — which is one leg of the bitwise-determinism
/// contract (docs/ARCHITECTURE.md §3, §7).

#ifndef UTS_TS_ROW_BLOCK_HPP_
#define UTS_TS_ROW_BLOCK_HPP_

#include <cassert>
#include <cstddef>
#include <span>

namespace uts::ts {

/// \brief Queries per block of the multi-query distance kernel: independent
/// accumulator chains that overlap the FP-add latency a single strictly
/// ordered per-pair sum cannot hide.
inline constexpr std::size_t kQueryBlock = 4;

/// \brief Cache-block size of the multi-query kernels' candidate tiling, in
/// bytes. The kernels walk candidate rows in tiles of
/// `kCandidateTileBytes / (stride * sizeof(double))` rows and replay every
/// query block against one resident tile before streaming the next, so each
/// candidate row is fetched from memory once per *tile pass* instead of once
/// per query block. Sized to half the 2 MiB L2 recorded in the benchmark
/// context (BENCH_uncertain_baseline.json): the tile plus the query block
/// and output slices stay L2-resident with room for prefetch streams.
/// Tiling only reorders which (query, candidate) pair is evaluated when —
/// each pair's accumulation is still one pass in ascending timestamp order,
/// so results are unchanged bit for bit.
inline constexpr std::size_t kCandidateTileBytes = std::size_t{1} << 20;

/// \brief Candidate rows per tile for a given row stride (>= kQueryBlock so
/// a tile is never smaller than one query block's worth of work).
inline constexpr std::size_t CandidateTileRows(std::size_t stride) {
  const std::size_t bytes_per_row = stride * sizeof(double);
  if (bytes_per_row == 0) return kQueryBlock;
  const std::size_t rows = kCandidateTileBytes / bytes_per_row;
  return rows < kQueryBlock ? kQueryBlock : rows;
}

/// \brief Rows per paged storage block for a given stride: four candidate
/// tiles (~4 MiB), rounded up to a multiple of kQueryBlock so a grain-
/// kQueryBlock query chunk never straddles a block boundary. A pure
/// function of the stride alone — identical however the store is paged —
/// so block-clipped partitions depend only on the data shape.
inline constexpr std::size_t DefaultBlockRows(std::size_t stride) {
  std::size_t rows = 4 * CandidateTileRows(stride);
  const std::size_t rem = rows % kQueryBlock;
  if (rem != 0) rows += kQueryBlock - rem;
  return rows;
}

/// \brief Borrowed view of one contiguous run of SoA rows. Mirrors the row
/// accessors of the old resident store so kernels are written identically;
/// validity is the caller's pin (see file comment).
class RowBlock {
 public:
  RowBlock() = default;

  /// View over `rows` rows of length `stride` starting at `data`.
  RowBlock(const double* data, std::size_t stride, std::size_t rows)
      : data_(data), stride_(stride), rows_(rows) {}

  /// Number of rows in the block.
  std::size_t rows() const { return rows_; }

  /// Length of every row (elements between consecutive rows).
  std::size_t stride() const { return stride_; }

  /// True iff the block holds no rows.
  bool empty() const { return rows_ == 0; }

  /// Base pointer (row i starts at data() + i * stride()).
  const double* data() const { return data_; }

  /// Row view of block-local row i; precondition i < rows().
  std::span<const double> row(std::size_t i) const {
    assert(i < rows_);
    return {data_ + i * stride_, stride_};
  }

 private:
  const double* data_ = nullptr;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace uts::ts

#endif  // UTS_TS_ROW_BLOCK_HPP_
