#include "ts/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "prob/stats.hpp"
#include "ts/normalize.hpp"

namespace uts::ts {

bool Dataset::HasUniformLength() const {
  if (series_.empty()) return true;
  const std::size_t n = series_.front().size();
  return std::all_of(series_.begin(), series_.end(),
                     [n](const TimeSeries& s) { return s.size() == n; });
}

std::shared_ptr<const SoaStore> Dataset::Packed() const {
  std::lock_guard<std::mutex> lock(packed_mutex_);
  if (packed_) return packed_;
  if (packed_unpackable_) return nullptr;  // memoized negative result
  const std::size_t stride =
      series_.empty() ? 0 : series_.front().size();
  if (stride == 0 || !HasUniformLength()) {
    packed_unpackable_ = true;
    return nullptr;
  }
  std::vector<double> values;
  values.reserve(series_.size() * stride);
  for (const auto& s : series_) {
    values.insert(values.end(), s.begin(), s.end());
  }
  auto store = SoaStore::FromPacked(std::move(values), stride);
  if (!store.ok()) {
    packed_unpackable_ = true;
    return nullptr;
  }
  packed_ = std::make_shared<const SoaStore>(std::move(store).ValueOrDie());
  return packed_;
}

std::map<int, std::size_t> Dataset::ClassHistogram() const {
  std::map<int, std::size_t> hist;
  for (const auto& s : series_) ++hist[s.label()];
  return hist;
}

DatasetInfo Dataset::Summarize(std::size_t pairwise_sample_limit) const {
  DatasetInfo info;
  info.name = name_;
  info.num_series = series_.size();
  if (series_.empty()) return info;

  prob::RunningStats lengths;
  for (const auto& s : series_) lengths.Add(static_cast<double>(s.size()));
  info.min_length = static_cast<std::size_t>(lengths.Min());
  info.max_length = static_cast<std::size_t>(lengths.Max());
  info.avg_length = lengths.Mean();
  info.num_classes = ClassHistogram().size();

  // Mean pairwise Euclidean distance over a (possibly capped) prefix.
  std::size_t limit = pairwise_sample_limit == 0
                          ? series_.size()
                          : std::min(pairwise_sample_limit, series_.size());
  prob::RunningStats dist_stats;
  for (std::size_t i = 0; i < limit; ++i) {
    for (std::size_t j = i + 1; j < limit; ++j) {
      const auto& a = series_[i];
      const auto& b = series_[j];
      const std::size_t n = std::min(a.size(), b.size());
      double sum = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        const double d = a[t] - b[t];
        sum += d * d;
      }
      dist_stats.Add(std::sqrt(sum));
    }
  }
  info.avg_pairwise_distance = dist_stats.Mean();
  return info;
}

Result<Dataset> Dataset::Truncated(std::size_t count,
                                   std::size_t length) const {
  if (count > series_.size()) {
    return Status::InvalidArgument("dataset has fewer series than requested");
  }
  if (length == 0) return Status::InvalidArgument("length must be >= 1");
  Dataset out(name_ + "-truncated");
  for (std::size_t i = 0; i < count; ++i) {
    const auto& s = series_[i];
    if (s.size() < length) {
      return Status::InvalidArgument("series shorter than requested length");
    }
    std::vector<double> values(s.values().begin(),
                               s.values().begin() + static_cast<long>(length));
    out.Add(TimeSeries(std::move(values), s.label(), s.id()));
  }
  return out;
}

Dataset Dataset::ZNormalizedCopy() const {
  Dataset out(name_);
  for (const auto& s : series_) out.Add(ZNormalized(s));
  return out;
}

Dataset Dataset::Merge(std::string name, const Dataset& a, const Dataset& b) {
  Dataset out(std::move(name));
  for (const auto& s : a) out.Add(s);
  for (const auto& s : b) out.Add(s);
  return out;
}

}  // namespace uts::ts
