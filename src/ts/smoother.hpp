/// \file smoother.hpp
/// \brief Correlation-aware denoising: AR(1) Kalman/RTS smoothing.
///
/// The paper's concluding direction: "a promising direction is to develop
/// measures that take into account the sequential correlations inherent in
/// time series" (Section 7). UMA/UEMA exploit correlation implicitly
/// through a fixed window; this module models it explicitly:
///
///   state:        x_t = ρ·x_{t-1} + w_t,   w_t ~ N(0, (1-ρ²)·V)
///   observation:  y_t = x_t + e_t,         e_t ~ N(0, s_t²)
///
/// where V is the stationary signal variance (1 for z-normalized series)
/// and s_t is the per-point *reported* error standard deviation — the same
/// information UMA/UEMA consume. A forward Kalman filter plus a backward
/// Rauch–Tung–Striebel pass yields the posterior mean E[x_t | y_1..y_n],
/// the minimum-MSE reconstruction under the model. The correlation-aware
/// similarity measure is the Euclidean distance between smoothed series
/// (`core::Ar1SmootherMatcher`), evaluated against UMA/UEMA by
/// `bench_ext_correlation`.

#ifndef UTS_TS_SMOOTHER_HPP_
#define UTS_TS_SMOOTHER_HPP_

#include <span>
#include <vector>

#include "common/result.hpp"

namespace uts::ts {

/// \brief Options of the AR(1) smoother.
struct Ar1SmootherOptions {
  /// AR(1) coefficient ρ of the latent signal. 0 = estimate it from the
  /// observations via noise-corrected lag-1 autocorrelation.
  double rho = 0.0;

  /// Stationary variance V of the latent signal (1 for z-normalized data).
  double state_variance = 1.0;

  /// Clamp range for the (estimated) ρ; the model needs |ρ| < 1.
  double min_rho = 0.0;
  double max_rho = 0.995;
};

/// \brief Estimate the latent AR(1) coefficient from noisy observations.
///
/// With uncorrelated observation noise, the lag-1 autocovariance of y is
/// untouched by noise while its variance gains the mean noise variance:
/// ρ ≈ r_y(1) · (Var(y)) / (Var(y) − mean(s²)). The estimate is clamped to
/// [min_rho, max_rho]. Requires at least 8 observations.
Result<double> EstimateAr1Rho(std::span<const double> observations,
                              std::span<const double> stddevs,
                              const Ar1SmootherOptions& options = {});

/// \brief Posterior-mean reconstruction E[x | y] under the AR(1) model.
///
/// \param observations noisy values y_t
/// \param stddevs      per-point error standard deviations s_t (> 0)
Result<std::vector<double>> Ar1KalmanSmooth(
    std::span<const double> observations, std::span<const double> stddevs,
    const Ar1SmootherOptions& options = {});

}  // namespace uts::ts

#endif  // UTS_TS_SMOOTHER_HPP_
