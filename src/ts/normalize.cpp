#include "ts/normalize.hpp"

#include <cmath>

#include "prob/stats.hpp"

namespace uts::ts {

SeriesMoments ComputeMoments(const TimeSeries& series) {
  prob::RunningStats stats;
  for (double v : series) stats.Add(v);
  return {stats.Mean(), stats.StdDevPopulation()};
}

void ZNormalizeInPlace(TimeSeries& series, double epsilon) {
  const SeriesMoments m = ComputeMoments(series);
  auto& values = series.mutable_values();
  if (m.stddev <= epsilon) {
    for (double& v : values) v -= m.mean;
    return;
  }
  for (double& v : values) v = (v - m.mean) / m.stddev;
}

TimeSeries ZNormalized(const TimeSeries& series, double epsilon) {
  TimeSeries out = series;
  ZNormalizeInPlace(out, epsilon);
  return out;
}

void MinMaxNormalizeInPlace(TimeSeries& series, double lo, double hi) {
  if (series.empty()) return;
  double vmin = series[0];
  double vmax = series[0];
  for (double v : series) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  auto& values = series.mutable_values();
  if (vmax <= vmin) {
    for (double& v : values) v = 0.5 * (lo + hi);
    return;
  }
  const double scale = (hi - lo) / (vmax - vmin);
  for (double& v : values) v = lo + (v - vmin) * scale;
}

}  // namespace uts::ts
