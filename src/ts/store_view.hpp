/// \file store_view.hpp
/// \brief Pinned access to a `ts::SoaStore` — the only way row bytes reach a
/// consumer.
///
/// A `StoreView` exposes the store's block geometry and hands out pinned
/// blocks: `Pin(b)` returns a `PinnedBlock` whose `RowBlock` stays resident
/// until the guard dies, `PinRow(r)` pins the block containing one row. For
/// resident (unpaged) stores a pin is a pointer copy — no pool traffic, no
/// atomic, nothing — so the hot resident path pays nothing for the API.
///
/// `PartitionRows` is the paging-aware sibling of the engines' old
/// `ParallelFor(n, grain)` partition: it emits the exact same grain-sized
/// chunks in the same order and merely clips them at block boundaries, so a
/// worker never needs two candidate blocks pinned for one chunk. For a
/// resident store (one block) the output is bit-for-bit the old partition;
/// for a paged store the extra cuts only change which worker computes a
/// pair, never the per-pair accumulation order — the determinism contract
/// (docs/ARCHITECTURE.md §3, §7) makes both irrelevant to the result.

#ifndef UTS_TS_STORE_VIEW_HPP_
#define UTS_TS_STORE_VIEW_HPP_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "ts/row_block.hpp"
#include "ts/soa_store.hpp"

namespace uts::ts {

/// \brief Borrowed, copyable handle over a store's blocks; the store must
/// outlive the view and every pin taken from it.
class StoreView {
 public:
  /// \brief RAII pin over one block: the wrapped RowBlock is valid until
  /// this guard is destroyed. Movable, not copyable.
  class PinnedBlock {
   public:
    PinnedBlock() = default;
    ~PinnedBlock() { Release(); }
    PinnedBlock(PinnedBlock&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          page_(std::exchange(other.page_, nullptr)),
          block_(other.block_),
          first_row_(other.first_row_) {}
    PinnedBlock& operator=(PinnedBlock&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = std::exchange(other.pool_, nullptr);
        page_ = std::exchange(other.page_, nullptr);
        block_ = other.block_;
        first_row_ = other.first_row_;
      }
      return *this;
    }
    PinnedBlock(const PinnedBlock&) = delete;
    PinnedBlock& operator=(const PinnedBlock&) = delete;

    /// The pinned rows; indices into it are block-local.
    const RowBlock& block() const { return block_; }

    /// Global index of the block's first row (local row 0).
    std::size_t first_row() const { return first_row_; }

   private:
    friend class StoreView;
    PinnedBlock(BufferPool* pool, BufferPool::Page* page, RowBlock block,
                std::size_t first_row)
        : pool_(pool), page_(page), block_(block), first_row_(first_row) {}

    void Release() {
      if (pool_ != nullptr && page_ != nullptr) pool_->Unpin(page_);
      pool_ = nullptr;
      page_ = nullptr;
    }

    BufferPool* pool_ = nullptr;  ///< Null for resident stores: nothing to unpin.
    BufferPool::Page* page_ = nullptr;
    RowBlock block_;
    std::size_t first_row_ = 0;
  };

  /// \brief RAII pin of the block containing a single row.
  class PinnedRow {
   public:
    PinnedRow() = default;

    /// The pinned row values.
    std::span<const double> row() const { return row_; }

   private:
    friend class StoreView;
    PinnedRow(PinnedBlock pin, std::span<const double> row)
        : pin_(std::move(pin)), row_(row) {}

    PinnedBlock pin_;
    std::span<const double> row_;
  };

  /// View over `store`; the store must outlive the view.
  explicit StoreView(const SoaStore& store) : store_(&store) {}

  /// Number of series.
  std::size_t rows() const { return store_->rows(); }

  /// Length of every series.
  std::size_t stride() const { return store_->stride(); }

  /// True iff the store holds no series.
  bool empty() const { return store_->empty(); }

  /// Number of blocks.
  std::size_t num_blocks() const { return store_->num_blocks(); }

  /// Block containing global row `row`.
  std::size_t block_of(std::size_t row) const {
    assert(row < store_->rows());
    return row / store_->block_rows();
  }

  /// Global index of block `b`'s first row.
  std::size_t block_first_row(std::size_t b) const {
    return store_->block_first_row(b);
  }

  /// Row count of block `b`.
  std::size_t block_row_count(std::size_t b) const {
    return store_->block_row_count(b);
  }

  /// Pin block `b` resident; fails only when a paged store's spill log is
  /// unreadable.
  Result<PinnedBlock> Pin(std::size_t b) const {
    assert(b < store_->num_blocks());
    const std::size_t first = store_->block_first_row(b);
    const std::size_t count = store_->block_row_count(b);
    if (!store_->paged()) {
      return PinnedBlock(nullptr, nullptr,
                         RowBlock(store_->values_.data() +
                                      first * store_->stride(),
                                  store_->stride(), count),
                         first);
    }
    BufferPool* pool = store_->pool_.get();
    BufferPool::Page* page = store_->pages_[b].get();
    UTS_ASSIGN_OR_RETURN(const double* data, pool->Pin(page));
    return PinnedBlock(pool, page, RowBlock(data, store_->stride(), count),
                       first);
  }

  /// Pin the block containing global row `row` and return that row.
  Result<PinnedRow> PinRow(std::size_t row) const {
    UTS_ASSIGN_OR_RETURN(PinnedBlock pin, Pin(block_of(row)));
    const std::span<const double> values =
        pin.block().row(row - pin.first_row());
    return PinnedRow(std::move(pin), values);
  }

 private:
  const SoaStore* store_;
};

/// \brief One scan chunk: global candidate rows [begin, end) all inside
/// block `block`.
struct RowChunk {
  std::size_t block;  ///< Block the rows live in.
  std::size_t begin;  ///< First global row.
  std::size_t end;    ///< One past the last global row.
};

/// Grain-sized scan chunks over rows [row_begin, row_end), clipped at block
/// boundaries. Identical to the classic `ParallelFor(n, grain)` chunking
/// for single-block stores; see the file comment for the determinism
/// argument. `grain == 0` is treated as 1.
inline std::vector<RowChunk> PartitionRowRange(const StoreView& view,
                                               std::size_t row_begin,
                                               std::size_t row_end,
                                               std::size_t grain) {
  if (grain == 0) grain = 1;
  std::vector<RowChunk> chunks;
  if (row_begin >= row_end) return chunks;
  chunks.reserve((row_end - row_begin + grain - 1) / grain + 1);
  std::size_t at = row_begin;
  while (at < row_end) {
    const std::size_t grain_end =
        row_begin + ((at - row_begin) / grain + 1) * grain;
    const std::size_t block = view.block_of(at);
    const std::size_t block_end =
        view.block_first_row(block) + view.block_row_count(block);
    const std::size_t end = std::min({grain_end, block_end, row_end});
    chunks.push_back(RowChunk{block, at, end});
    at = end;
  }
  return chunks;
}

/// PartitionRowRange over the whole store.
inline std::vector<RowChunk> PartitionRows(const StoreView& view,
                                           std::size_t grain) {
  return PartitionRowRange(view, 0, view.rows(), grain);
}

/// Pin that treats failure as fatal. A pin can only fail when a paged
/// store's spill log has become unreadable — the run's backing bytes are
/// gone, every subsequent result would be wrong, and the hot query APIs
/// return plain values — so the engines fail stop here rather than
/// propagate an unrecoverable state (documented in docs/ARCHITECTURE.md §7).
inline StoreView::PinnedBlock PinOrAbort(const StoreView& view,
                                         std::size_t block) {
  auto pinned = view.Pin(block);
  if (!pinned.ok()) {
    std::fprintf(stderr, "uncertts: block pin failed: %s\n",
                 pinned.status().ToString().c_str());
    std::abort();
  }
  return std::move(pinned).ValueOrDie();
}

/// Row variant of PinOrAbort.
inline StoreView::PinnedRow PinRowOrAbort(const StoreView& view,
                                          std::size_t row) {
  auto pinned = view.PinRow(row);
  if (!pinned.ok()) {
    std::fprintf(stderr, "uncertts: row pin failed: %s\n",
                 pinned.status().ToString().c_str());
    std::abort();
  }
  return std::move(pinned).ValueOrDie();
}

}  // namespace uts::ts

#endif  // UTS_TS_STORE_VIEW_HPP_
