/// \file resample.hpp
/// \brief Length adjustment by linear-interpolation resampling.
///
/// The Figure 12 experiment varies the time-series length between 50 and
/// 1000 points: "Time series of different lengths have been obtained
/// resampling the raw sequences" (Section 4.3).

#ifndef UTS_TS_RESAMPLE_HPP_
#define UTS_TS_RESAMPLE_HPP_

#include <cstddef>

#include "common/result.hpp"
#include "ts/time_series.hpp"

namespace uts::ts {

/// \brief Resample `series` to `new_length` points by linear interpolation
/// over the normalized time axis [0, 1].
///
/// Endpoints are preserved. Requires the input to have >= 2 points and
/// new_length >= 2.
Result<TimeSeries> LinearResample(const TimeSeries& series,
                                  std::size_t new_length);

/// \brief Downsample by decimation: keep every `stride`-th point.
Result<TimeSeries> Decimate(const TimeSeries& series, std::size_t stride);

}  // namespace uts::ts

#endif  // UTS_TS_RESAMPLE_HPP_
