#include "ts/resample.hpp"

#include <cmath>
#include <vector>

namespace uts::ts {

Result<TimeSeries> LinearResample(const TimeSeries& series,
                                  std::size_t new_length) {
  if (series.size() < 2) {
    return Status::InvalidArgument("resampling needs at least 2 input points");
  }
  if (new_length < 2) {
    return Status::InvalidArgument("resampled length must be at least 2");
  }
  std::vector<double> out(new_length);
  const double src_span = static_cast<double>(series.size() - 1);
  const double dst_span = static_cast<double>(new_length - 1);
  for (std::size_t i = 0; i < new_length; ++i) {
    const double t = static_cast<double>(i) / dst_span * src_span;
    const auto lo = static_cast<std::size_t>(std::floor(t));
    const std::size_t hi = std::min(lo + 1, series.size() - 1);
    const double frac = t - static_cast<double>(lo);
    out[i] = series[lo] * (1.0 - frac) + series[hi] * frac;
  }
  return TimeSeries(std::move(out), series.label(), series.id());
}

Result<TimeSeries> Decimate(const TimeSeries& series, std::size_t stride) {
  if (stride == 0) return Status::InvalidArgument("stride must be >= 1");
  if (series.empty()) return Status::InvalidArgument("empty series");
  std::vector<double> out;
  out.reserve(series.size() / stride + 1);
  for (std::size_t i = 0; i < series.size(); i += stride) out.push_back(series[i]);
  return TimeSeries(std::move(out), series.label(), series.id());
}

}  // namespace uts::ts
