/// \file soa_store.hpp
/// \brief Block-structured structure-of-arrays backing store for a
/// fixed-length time-series collection.
///
/// The evaluation of Dallachiesa et al. is dominated by all-pairs distance
/// sweeps (10-NN ground truth, threshold calibration, PRQ scoring). Those
/// kernels are memory-bound, so series values are packed row-major with a
/// fixed stride — but no longer into one flat immortal allocation: a store
/// is a sequence of fixed-size row blocks (ts/row_block.hpp geometry).
/// Resident stores hold a single block covering every row; stores built
/// against a `ts::BufferPool` split into `DefaultBlockRows(stride)`-row
/// blocks that spill to disk and page back on demand, so collections larger
/// than the memory budget still scan.
///
/// Consumers never touch raw storage: `ts::StoreView` pins blocks and hands
/// out `ts::RowBlock`s (the only shape the distance kernels accept). The
/// `resident_*` accessors below are the one escape hatch — valid only for
/// unpaged stores, used by the packer itself and guarded against elsewhere
/// by tools/check_store_raw_access.py.
///
/// Construction is checked, not asserted: `FromPacked`/`FromRows` return
/// `Result<SoaStore>` and reject a zero stride or a value count that is not
/// a whole number of rows in Release builds too.

#ifndef UTS_TS_SOA_STORE_HPP_
#define UTS_TS_SOA_STORE_HPP_

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "ts/buffer_pool.hpp"
#include "ts/row_block.hpp"

namespace uts::ts {

/// \brief Row-major values of `rows()` series of equal length `stride()`,
/// held as pool-paged blocks (or one resident block when built without a
/// pool).
class SoaStore {
 public:
  /// Fills row `row` of a store under construction into `out`
  /// (`out.size() == stride()`); called in ascending row order.
  using RowFn = std::function<void(std::size_t row, std::span<double> out)>;

  SoaStore() = default;
  ~SoaStore() { ReleasePages(); }

  SoaStore(SoaStore&& other) noexcept = default;
  SoaStore& operator=(SoaStore&& other) noexcept {
    if (this != &other) {
      ReleasePages();
      values_ = std::move(other.values_);
      pool_ = std::move(other.pool_);
      pages_ = std::move(other.pages_);
      stride_ = other.stride_;
      rows_ = other.rows_;
      block_rows_ = other.block_rows_;
    }
    return *this;
  }
  SoaStore(const SoaStore&) = delete;
  SoaStore& operator=(const SoaStore&) = delete;

  /// Build from packed row-major values. Fails with InvalidArgument when
  /// `stride == 0` with non-empty values, or `values.size()` is not a
  /// multiple of `stride`. With a `pool`, the values are split into blocks
  /// of `block_rows` rows (0 = DefaultBlockRows(stride)) and admitted to
  /// the pool; without one the store stays resident as a single block.
  static Result<SoaStore> FromPacked(std::vector<double> values,
                                     std::size_t stride,
                                     std::shared_ptr<BufferPool> pool = nullptr,
                                     std::size_t block_rows = 0);

  /// Build by streaming rows through `fill`, one block at a time — with a
  /// `pool`, at most one block's buffer is ever live during construction,
  /// so building a paged store never needs the packed collection in memory.
  /// Same validation and blocking rules as FromPacked.
  static Result<SoaStore> FromRows(std::size_t rows, std::size_t stride,
                                   const RowFn& fill,
                                   std::shared_ptr<BufferPool> pool = nullptr,
                                   std::size_t block_rows = 0);

  /// Number of series.
  std::size_t rows() const { return rows_; }

  /// Length of every series (elements between consecutive rows).
  std::size_t stride() const { return stride_; }

  /// True iff the store holds no series.
  bool empty() const { return rows_ == 0; }

  /// True iff the store pages through a buffer pool.
  bool paged() const { return pool_ != nullptr; }

  /// The pool backing a paged store (null when resident).
  const std::shared_ptr<BufferPool>& pool() const { return pool_; }

  /// Rows per block (the last block may be shorter). Equals rows() for a
  /// resident store.
  std::size_t block_rows() const { return block_rows_; }

  /// Number of blocks (1 for a non-empty resident store).
  std::size_t num_blocks() const {
    if (rows_ == 0) return 0;
    return (rows_ + block_rows_ - 1) / block_rows_;
  }

  /// Global index of the first row of block `b`.
  std::size_t block_first_row(std::size_t b) const { return b * block_rows_; }

  /// Row count of block `b`; precondition b < num_blocks().
  std::size_t block_row_count(std::size_t b) const {
    assert(b < num_blocks());
    const std::size_t first = block_first_row(b);
    const std::size_t left = rows_ - first;
    return left < block_rows_ ? left : block_rows_;
  }

  /// Row view of series i; precondition: !paged() and i < rows(). Paged
  /// consumers go through ts::StoreView.
  std::span<const double> resident_row(std::size_t i) const {
    assert(!paged() && i < rows_);
    return {values_.data() + i * stride_, stride_};
  }

  /// The packed values, row-major; precondition: !paged().
  std::span<const double> resident_values() const {
    assert(!paged());
    return values_;
  }

  /// Raw base pointer of a resident store; precondition: !paged().
  const double* resident_data() const {
    assert(!paged());
    return values_.data();
  }

 private:
  friend class StoreView;

  void ReleasePages() {
    if (pool_) {
      for (auto& page : pages_) pool_->Drop(page.get());
    }
    pages_.clear();
    pool_.reset();
  }

  std::vector<double> values_;  ///< Resident payload (unpaged stores only).
  std::shared_ptr<BufferPool> pool_;
  std::vector<std::unique_ptr<BufferPool::Page>> pages_;  ///< One per block.
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
  std::size_t block_rows_ = 0;
};

}  // namespace uts::ts

#endif  // UTS_TS_SOA_STORE_HPP_
