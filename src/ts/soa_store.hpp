/// \file soa_store.hpp
/// \brief Contiguous structure-of-arrays backing store for a fixed-length
/// time-series collection.
///
/// The evaluation of Dallachiesa et al. is dominated by all-pairs distance
/// sweeps (10-NN ground truth, threshold calibration, PRQ scoring). Those
/// kernels are memory-bound, so the series values are packed into one flat
/// row-major `std::vector<double>` with a fixed row stride: a kernel streams
/// consecutive cache lines instead of chasing one heap allocation per series.
/// Rows are handed out as `std::span` views; the store never owns labels or
/// ids — it is a pure value mirror of a `Dataset`.

#ifndef UTS_TS_SOA_STORE_HPP_
#define UTS_TS_SOA_STORE_HPP_

#include <cassert>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace uts::ts {

/// \brief Flat row-major values of `rows()` series of equal length
/// `stride()`.
class SoaStore {
 public:
  SoaStore() = default;

  /// Construct from packed values; precondition: `stride > 0` and
  /// `values.size()` is a multiple of `stride`, or both are zero.
  SoaStore(std::vector<double> values, std::size_t stride)
      : values_(std::move(values)), stride_(stride) {
    assert((stride_ == 0 && values_.empty()) ||
           (stride_ > 0 && values_.size() % stride_ == 0));
    rows_ = stride_ == 0 ? 0 : values_.size() / stride_;
  }

  /// Number of series.
  std::size_t rows() const { return rows_; }

  /// Length of every series (elements between consecutive rows).
  std::size_t stride() const { return stride_; }

  /// True iff the store holds no series.
  bool empty() const { return rows_ == 0; }

  /// Row view of series i; precondition i < rows().
  std::span<const double> row(std::size_t i) const {
    assert(i < rows_);
    return {values_.data() + i * stride_, stride_};
  }

  /// The packed values, row-major.
  std::span<const double> values() const { return values_; }

  /// Raw base pointer (row i starts at data() + i * stride()).
  const double* data() const { return values_.data(); }

 private:
  std::vector<double> values_;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace uts::ts

#endif  // UTS_TS_SOA_STORE_HPP_
