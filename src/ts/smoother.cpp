#include "ts/smoother.hpp"

#include <algorithm>
#include <cmath>

#include "prob/stats.hpp"

namespace uts::ts {

namespace {

Status ValidateInputs(std::span<const double> observations,
                      std::span<const double> stddevs,
                      const Ar1SmootherOptions& options) {
  if (observations.empty()) {
    return Status::InvalidArgument("no observations");
  }
  if (observations.size() != stddevs.size()) {
    return Status::InvalidArgument(
        "stddevs must have the same length as observations");
  }
  for (double s : stddevs) {
    if (!(s > 0.0)) {
      return Status::InvalidArgument(
          "error standard deviations must be strictly positive");
    }
  }
  if (!(options.state_variance > 0.0)) {
    return Status::InvalidArgument("state_variance must be positive");
  }
  if (options.rho < 0.0 || options.rho >= 1.0) {
    return Status::InvalidArgument("rho must lie in [0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<double> EstimateAr1Rho(std::span<const double> observations,
                              std::span<const double> stddevs,
                              const Ar1SmootherOptions& options) {
  if (observations.size() < 8) {
    return Status::InvalidArgument("need at least 8 observations");
  }
  if (observations.size() != stddevs.size()) {
    return Status::InvalidArgument(
        "stddevs must have the same length as observations");
  }
  prob::RunningStats stats;
  for (double y : observations) stats.Add(y);
  const double mean = stats.Mean();
  const double var_y = stats.VariancePopulation();

  double cov1 = 0.0;
  for (std::size_t t = 0; t + 1 < observations.size(); ++t) {
    cov1 += (observations[t] - mean) * (observations[t + 1] - mean);
  }
  cov1 /= static_cast<double>(observations.size() - 1);

  double noise_var = 0.0;
  for (double s : stddevs) noise_var += s * s;
  noise_var /= static_cast<double>(stddevs.size());

  // Var(y) = Var(x) + noise; Cov(y_t, y_{t+1}) = rho * Var(x).
  const double signal_var = var_y - noise_var;
  double rho;
  if (signal_var <= 1e-9 * std::max(var_y, 1.0)) {
    rho = options.min_rho;  // observations are (nearly) pure noise.
  } else {
    rho = cov1 / signal_var;
  }
  return std::clamp(rho, options.min_rho, options.max_rho);
}

Result<std::vector<double>> Ar1KalmanSmooth(
    std::span<const double> observations, std::span<const double> stddevs,
    const Ar1SmootherOptions& options) {
  UTS_RETURN_NOT_OK(ValidateInputs(observations, stddevs, options));

  double rho = options.rho;
  if (rho == 0.0) {
    auto estimated = EstimateAr1Rho(observations, stddevs, options);
    // Short series cannot support estimation; fall back to independence.
    rho = estimated.ok() ? estimated.ValueOrDie() : 0.0;
  }
  const double v = options.state_variance;
  const double q = (1.0 - rho * rho) * v;  // innovation variance
  const std::size_t n = observations.size();

  // Forward Kalman filter. The t = 0 prior is the stationary N(0, V).
  std::vector<double> m_filt(n), p_filt(n), m_pred(n), p_pred(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (t == 0) {
      m_pred[t] = 0.0;
      p_pred[t] = v;
    } else {
      m_pred[t] = rho * m_filt[t - 1];
      p_pred[t] = rho * rho * p_filt[t - 1] + q;
    }
    const double r = stddevs[t] * stddevs[t];
    const double gain = p_pred[t] / (p_pred[t] + r);
    m_filt[t] = m_pred[t] + gain * (observations[t] - m_pred[t]);
    p_filt[t] = (1.0 - gain) * p_pred[t];
  }

  // Backward Rauch-Tung-Striebel pass for the full posterior mean.
  std::vector<double> smoothed(n);
  smoothed[n - 1] = m_filt[n - 1];
  for (std::size_t t = n - 1; t-- > 0;) {
    const double c = p_filt[t] * rho / p_pred[t + 1];
    smoothed[t] = m_filt[t] + c * (smoothed[t + 1] - m_pred[t + 1]);
  }
  return smoothed;
}

}  // namespace uts::ts
