#include "ts/filters.hpp"

#include <cassert>
#include <cmath>

namespace uts::ts {

namespace {

/// Core kernel shared by all four filters.
///
/// weight(j, i)  = exp(-λ|j-i|)        (λ = 0 for the non-exponential pair)
/// scale(j)      = 1 / s_j             (1 for the non-uncertain pair)
/// output(i)     = Σ_j v_j · weight · scale / denom
/// denom         = Σ_j weight          (renormalized over the real window)
///               or the literal Eq. 15/17 denominator in strict mode.
std::vector<double> Apply(std::span<const double> values,
                          const double* stddevs, double lambda,
                          const FilterOptions& options) {
  const std::size_t n = values.size();
  const std::size_t w = options.half_window;
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= w ? i - w : 0;
    const std::size_t hi = std::min(i + w, n == 0 ? 0 : n - 1);
    double numer = 0.0;
    double denom = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) {
      const double dist = static_cast<double>(j > i ? j - i : i - j);
      const double weight = std::exp(-lambda * dist);
      const double scale = stddevs == nullptr ? 1.0 : 1.0 / stddevs[j];
      numer += values[j] * weight * scale;
      denom += weight;
    }
    if (options.strict_paper_denominator) {
      if (lambda == 0.0) {
        // Eq. 15 / Eq. 17: fixed 2w+1 denominator.
        denom = static_cast<double>(2 * w + 1);
      } else {
        // Eq. 16 / Eq. 18: the weight sum over the full (untruncated) window.
        denom = 0.0;
        for (std::size_t k = 0; k <= w; ++k) {
          denom += std::exp(-lambda * static_cast<double>(k)) * (k == 0 ? 1 : 2);
        }
      }
    }
    out[i] = denom > 0.0 ? numer / denom : values[i];
  }
  return out;
}

Status ValidateStddevs(std::span<const double> values,
                       std::span<const double> stddevs) {
  if (stddevs.size() != values.size()) {
    return Status::InvalidArgument(
        "stddevs must have the same length as values");
  }
  for (double s : stddevs) {
    if (!(s > 0.0)) {
      return Status::InvalidArgument(
          "error standard deviations must be strictly positive");
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<double> MovingAverage(std::span<const double> values,
                                  const FilterOptions& options) {
  return Apply(values, nullptr, 0.0, options);
}

std::vector<double> ExponentialMovingAverage(std::span<const double> values,
                                             const FilterOptions& options) {
  assert(options.lambda >= 0.0);
  return Apply(values, nullptr, options.lambda, options);
}

Result<std::vector<double>> UncertainMovingAverage(
    std::span<const double> values, std::span<const double> stddevs,
    const FilterOptions& options) {
  UTS_RETURN_NOT_OK(ValidateStddevs(values, stddevs));
  return Apply(values, stddevs.data(), 0.0, options);
}

Result<std::vector<double>> UncertainExponentialMovingAverage(
    std::span<const double> values, std::span<const double> stddevs,
    const FilterOptions& options) {
  assert(options.lambda >= 0.0);
  UTS_RETURN_NOT_OK(ValidateStddevs(values, stddevs));
  return Apply(values, stddevs.data(), options.lambda, options);
}

TimeSeries MovingAverage(const TimeSeries& series,
                         const FilterOptions& options) {
  return TimeSeries(MovingAverage(series.values(), options), series.label(),
                    series.id());
}

TimeSeries ExponentialMovingAverage(const TimeSeries& series,
                                    const FilterOptions& options) {
  return TimeSeries(ExponentialMovingAverage(series.values(), options),
                    series.label(), series.id());
}

Result<TimeSeries> UncertainMovingAverage(const TimeSeries& series,
                                          std::span<const double> stddevs,
                                          const FilterOptions& options) {
  auto filtered = UncertainMovingAverage(series.values(), stddevs, options);
  if (!filtered.ok()) return filtered.status();
  return TimeSeries(std::move(filtered).ValueOrDie(), series.label(),
                    series.id());
}

Result<TimeSeries> UncertainExponentialMovingAverage(
    const TimeSeries& series, std::span<const double> stddevs,
    const FilterOptions& options) {
  auto filtered =
      UncertainExponentialMovingAverage(series.values(), stddevs, options);
  if (!filtered.ok()) return filtered.status();
  return TimeSeries(std::move(filtered).ValueOrDie(), series.label(),
                    series.id());
}

}  // namespace uts::ts
