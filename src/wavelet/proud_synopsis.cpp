#include "wavelet/proud_synopsis.hpp"

#include <cassert>
#include <cmath>

#include "prob/special.hpp"

namespace uts::wavelet {

ProudSynopsisMatcher::ProudSynopsisMatcher(ProudSynopsisOptions options)
    : options_(options), proud_(options.proud) {
  assert(options_.proud.tau >= 0.5 &&
         "synopsis pruning is only sound for tau >= 0.5");
  assert(options_.synopsis_size >= 1);
}

HaarSynopsis ProudSynopsisMatcher::Synopsize(
    std::span<const double> observations) const {
  return BuildSynopsis(observations, options_.synopsis_size);
}

Result<double> ProudSynopsisMatcher::OptimisticMatchProbability(
    const HaarSynopsis& x, const HaarSynopsis& y, std::size_t series_length,
    double epsilon) const {
  auto lower = SynopsisDistance(x, y);
  if (!lower.ok()) return lower.status();
  const double lb = lower.ValueOrDie();
  const double lb_sq = lb * lb;  // L <= S = Σ μ_i²

  const double sigma = options_.proud.sigma;
  const double v = 2.0 * sigma * sigma;
  const double n = static_cast<double>(series_length);
  const double mean_sq = lb_sq + n * v;
  const double var_sq = 2.0 * n * v * v + 4.0 * lb_sq * v;
  if (var_sq <= 0.0) return mean_sq <= epsilon * epsilon ? 1.0 : 0.0;
  const double z = (epsilon * epsilon - mean_sq) / std::sqrt(var_sq);
  return prob::NormalCdf(z);
}

Result<bool> ProudSynopsisMatcher::Matches(const HaarSynopsis& x_syn,
                                           const HaarSynopsis& y_syn,
                                           std::span<const double> x_obs,
                                           std::span<const double> y_obs,
                                           double epsilon,
                                           ProudSynopsisStats* stats) const {
  auto optimistic =
      OptimisticMatchProbability(x_syn, y_syn, x_obs.size(), epsilon);
  if (!optimistic.ok()) return optimistic.status();
  if (optimistic.ValueOrDie() < options_.proud.tau) {
    if (stats != nullptr) ++stats->pruned;
    return false;  // even the upper bound fails τ: safe reject.
  }
  if (stats != nullptr) ++stats->refined;
  return proud_.Matches(x_obs, y_obs, epsilon);
}

}  // namespace uts::wavelet
