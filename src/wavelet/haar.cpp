#include "wavelet/haar.hpp"

#include <cmath>

namespace uts::wavelet {

namespace {

constexpr double kInvSqrt2 = 0.707106781186547524400844362104849039;

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Result<std::vector<double>> HaarTransform(std::span<const double> values) {
  if (!IsPowerOfTwo(values.size())) {
    return Status::InvalidArgument("Haar transform needs a power-of-two length");
  }
  std::vector<double> data(values.begin(), values.end());
  std::vector<double> scratch(data.size());
  // In each pass the first half becomes pairwise averages (·1/√2) and the
  // second half pairwise differences, then recurse on the averages.
  for (std::size_t len = data.size(); len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      scratch[i] = (data[2 * i] + data[2 * i + 1]) * kInvSqrt2;
      scratch[half + i] = (data[2 * i] - data[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(len),
              data.begin());
  }
  return data;
}

Result<std::vector<double>> HaarInverse(std::span<const double> coefficients) {
  if (!IsPowerOfTwo(coefficients.size())) {
    return Status::InvalidArgument("Haar inverse needs a power-of-two length");
  }
  std::vector<double> data(coefficients.begin(), coefficients.end());
  std::vector<double> scratch(data.size());
  for (std::size_t len = 2; len <= data.size(); len *= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      scratch[2 * i] = (data[i] + data[half + i]) * kInvSqrt2;
      scratch[2 * i + 1] = (data[i] - data[half + i]) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(len),
              data.begin());
  }
  return data;
}

std::vector<double> HaarTransformPadded(std::span<const double> values) {
  const std::size_t padded = NextPowerOfTwo(std::max<std::size_t>(values.size(), 1));
  std::vector<double> padded_values(values.begin(), values.end());
  padded_values.resize(padded, 0.0);
  auto result = HaarTransform(padded_values);
  // Power-of-two length is guaranteed by construction.
  return std::move(result).ValueOrDie();
}

HaarSynopsis BuildSynopsis(std::span<const double> values, std::size_t k) {
  HaarSynopsis synopsis;
  synopsis.original_length = values.size();
  synopsis.padded_length = NextPowerOfTwo(std::max<std::size_t>(values.size(), 1));
  std::vector<double> coeffs = HaarTransformPadded(values);
  if (k > coeffs.size()) k = coeffs.size();
  synopsis.coefficients.assign(coeffs.begin(),
                               coeffs.begin() + static_cast<long>(k));
  return synopsis;
}

Result<double> SynopsisDistance(const HaarSynopsis& a, const HaarSynopsis& b) {
  if (a.padded_length != b.padded_length) {
    return Status::InvalidArgument(
        "synopses were built over different transform lengths");
  }
  if (a.coefficients.size() != b.coefficients.size()) {
    // Silently truncating to min(k_a, k_b) would weaken the bound without
    // notice; mixed synopsis sizes are a caller bug, not a degraded mode.
    return Status::InvalidArgument(
        "synopses have different coefficient counts (" +
        std::to_string(a.coefficients.size()) + " vs " +
        std::to_string(b.coefficients.size()) + ")");
  }
  const std::size_t k = a.coefficients.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = a.coefficients[i] - b.coefficients[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace uts::wavelet
