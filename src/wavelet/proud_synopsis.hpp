/// \file proud_synopsis.hpp
/// \brief PROUD over a Haar wavelet synopsis: filter-and-refine matching.
///
/// The synopsis distance lower-bounds Σ μ_i² (the squared observation
/// distance). Under PROUD's normal approximation with constant per-point
/// variance v = 2σ², the match probability
///
///     Pr(dist² ≤ ε²) = Φ( (ε² − (S + n·v)) / sqrt(2·n·v² + 4·S·v) ),
///     S = Σ μ_i²
///
/// is monotonically decreasing in S whenever the argument is nonnegative,
/// i.e. whenever the probability is at least 1/2. Hence for τ ≥ 0.5,
/// evaluating the probability at the synopsis lower bound L ≤ S yields an
/// upper bound on the true probability, and "optimistic probability < τ" is
/// a safe prune (no false dismissals). Survivors are refined with the exact
/// observation distance.

#ifndef UTS_WAVELET_PROUD_SYNOPSIS_HPP_
#define UTS_WAVELET_PROUD_SYNOPSIS_HPP_

#include <span>
#include <vector>

#include "common/result.hpp"
#include "measures/proud.hpp"
#include "wavelet/haar.hpp"

namespace uts::wavelet {

/// \brief Configuration of the synopsis-accelerated PROUD matcher.
struct ProudSynopsisOptions {
  measures::ProudOptions proud;  ///< τ and σ; τ must be >= 0.5 for pruning.
  std::size_t synopsis_size = 16;  ///< Coefficients kept per series.
};

/// \brief Counters describing how effective the filter step was.
struct ProudSynopsisStats {
  std::size_t pruned = 0;    ///< Candidates rejected by the synopsis bound.
  std::size_t refined = 0;   ///< Candidates that needed the exact distance.
};

/// \brief PROUD matcher with Haar-synopsis pruning.
class ProudSynopsisMatcher {
 public:
  /// \pre options.proud.tau >= 0.5 (required for the prune to be safe); the
  /// constructor asserts this.
  explicit ProudSynopsisMatcher(ProudSynopsisOptions options);

  /// Build the synopsis of one series' observations.
  HaarSynopsis Synopsize(std::span<const double> observations) const;

  /// Optimistic (upper-bound) match probability from synopses only.
  Result<double> OptimisticMatchProbability(const HaarSynopsis& x,
                                            const HaarSynopsis& y,
                                            std::size_t series_length,
                                            double epsilon) const;

  /// Full decision: prune via synopses when possible, refine on the exact
  /// observations otherwise. Updates `stats` (pass nullptr to skip).
  Result<bool> Matches(const HaarSynopsis& x_syn, const HaarSynopsis& y_syn,
                       std::span<const double> x_obs,
                       std::span<const double> y_obs, double epsilon,
                       ProudSynopsisStats* stats = nullptr) const;

  const ProudSynopsisOptions& options() const { return options_; }

 private:
  ProudSynopsisOptions options_;
  measures::Proud proud_;
};

}  // namespace uts::wavelet

#endif  // UTS_WAVELET_PROUD_SYNOPSIS_HPP_
