/// \file haar.hpp
/// \brief Orthonormal Haar wavelet transform and top-prefix synopses.
///
/// PROUD was designed to run over a Haar wavelet synopsis of the stream:
/// "it is possible to apply PROUD on top of a Haar wavelet synopsis. This
/// results in CPU time for PROUD that is equal or less to the CPU time of
/// Euclidean, while maintaining high accuracy" (Section 4.3). The transform
/// here is the orthonormal variant, so Euclidean distances are preserved
/// exactly (Parseval), and any coefficient-prefix distance is a lower bound
/// of the true distance.

#ifndef UTS_WAVELET_HAAR_HPP_
#define UTS_WAVELET_HAAR_HPP_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace uts::wavelet {

/// \brief Smallest power of two >= n (n >= 1).
std::size_t NextPowerOfTwo(std::size_t n);

/// \brief Orthonormal Haar transform.
///
/// Input length must be a power of two. Output layout is the standard
/// pyramid: [ overall average · 2^{L/2}, detail levels coarse → fine ].
/// Energy is preserved: ||HaarTransform(x)||₂ == ||x||₂.
Result<std::vector<double>> HaarTransform(std::span<const double> values);

/// \brief Inverse orthonormal Haar transform (exact round-trip).
Result<std::vector<double>> HaarInverse(std::span<const double> coefficients);

/// \brief Zero-pad to the next power of two, then transform.
///
/// Padding with zeros keeps the prefix-distance lower-bound property between
/// series padded to the same length.
std::vector<double> HaarTransformPadded(std::span<const double> values);

/// \brief A fixed-size prefix of Haar coefficients (the synopsis).
struct HaarSynopsis {
  std::vector<double> coefficients;  ///< First k coefficients (coarsest).
  std::size_t original_length = 0;   ///< n before padding.
  std::size_t padded_length = 0;     ///< power-of-two transform length.
};

/// \brief Build a k-coefficient synopsis of `values`.
HaarSynopsis BuildSynopsis(std::span<const double> values, std::size_t k);

/// \brief Euclidean distance between two synopses of equal padded length
/// and equal coefficient count.
///
/// Lower-bounds the Euclidean distance of the underlying series:
/// dropping (nonnegative) squared coefficient differences can only shrink
/// the sum. Returns InvalidArgument when the transform lengths or the
/// coefficient counts differ — comparing prefixes of different sizes would
/// silently weaken the bound, so it is rejected rather than truncated.
Result<double> SynopsisDistance(const HaarSynopsis& a, const HaarSynopsis& b);

}  // namespace uts::wavelet

#endif  // UTS_WAVELET_HAAR_HPP_
