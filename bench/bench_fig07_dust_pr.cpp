/// \file bench_fig07_dust_pr.cpp
/// \brief Figure 7 — precision (a) and recall (b) of DUST, averaged over
/// all datasets, vs error standard deviation, for the three error families.
///
/// Paper expectation: "We observe the same trends as [PROUD], the only
/// difference being that DUST achieves slightly better precision, but lower
/// recall."

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig07_dust_pr",
      "Figure 7: DUST precision/recall vs error stddev, all datasets");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Figure 7", "DUST, precision & recall vs sigma", config);

  const char* kDistNames[] = {"uniform", "normal", "exponential"};
  const prob::ErrorKind kKinds[] = {prob::ErrorKind::kUniform,
                                    prob::ErrorKind::kNormal,
                                    prob::ErrorKind::kExponential};
  io::CsvWriter csv(
      {"error_distribution", "sigma", "precision", "recall", "f1"});

  core::DustMatcher dust;  // persistent: table cache shared across sigmas

  core::TextTable precision_table(
      {"sigma", "uniform", "normal", "exponential"});
  core::TextTable recall_table({"sigma", "uniform", "normal", "exponential"});

  for (double sigma : SigmaGrid()) {
    std::vector<std::string> p_row{core::TextTable::Num(sigma, 1)};
    std::vector<std::string> r_row{core::TextTable::Num(sigma, 1)};
    for (int d = 0; d < 3; ++d) {
      const auto spec = uncertain::ErrorSpec::Constant(kKinds[d], sigma);
      std::vector<core::Matcher*> matchers{&dust};
      auto pooled = RunPooled(datasets, spec, matchers, config);
      if (!pooled.ok()) {
        std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
        return 1;
      }
      const auto& r = pooled.ValueOrDie().front();
      p_row.push_back(
          core::TextTable::NumWithCi(r.precision.mean, r.precision.half_width));
      r_row.push_back(
          core::TextTable::NumWithCi(r.recall.mean, r.recall.half_width));
      csv.AddKeyedRow(kDistNames[d],
                      {sigma, r.precision.mean, r.recall.mean, r.f1.mean});
    }
    precision_table.AddRow(std::move(p_row));
    recall_table.AddRow(std::move(r_row));
  }

  std::printf("Figure 7(a) — DUST precision vs sigma\n%s\n",
              precision_table.ToString().c_str());
  std::printf("Figure 7(b) — DUST recall vs sigma\n%s\n",
              recall_table.ToString().c_str());
  EmitCsv(config, "fig07_dust_pr.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
