/// \file bench_supp_topk_instability.cpp
/// \brief Supplementary — why the paper evaluates similarity *matching*
/// instead of top-k search (Section 4.1.2):
///
/// "Observe that we cannot use the top-k search task for this comparison
/// ... these techniques can produce different rankings when the threshold ε
/// changes ... in the case of uncertain time series, MUNICH and PROUD might
/// produce very different top-k answers even if ε varies a little."
///
/// This harness quantifies that claim: rank all candidates of a query by
/// (a) an exact distance (Euclidean, DUST) and (b) a match probability at
/// threshold ε (PROUD, MUNICH), then measure the top-k overlap between the
/// rankings at ε and at (1+δ)·ε for small δ. Exact measures are invariant
/// by construction; the probabilistic rankings drift.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "distance/lp.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "uncertain/perturb.hpp"

namespace uts::bench {
namespace {

/// Top-k indices by descending score (ties by index).
std::vector<std::size_t> TopKByScore(const std::vector<double>& scores,
                                     std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<long>(std::min(k, order.size())),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(std::min(k, order.size()));
  return order;
}

double OverlapFraction(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b) {
  std::size_t hits = 0;
  for (std::size_t x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) ++hits;
  }
  return a.empty() ? 1.0 : double(hits) / double(a.size());
}

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_supp_topk_instability",
      "Supplementary: top-k ranking stability under small epsilon changes "
      "(Section 4.1.2)");
  if (config.datasets.empty()) config.datasets = {"GunPoint", "Trace"};
  const auto datasets = LoadDatasets(config);
  PrintBanner("Supplementary: top-k instability",
              "top-10 overlap between rankings at eps and (1+delta)*eps",
              config);

  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.6);
  constexpr std::size_t kTop = 10;
  const double deltas[] = {0.02, 0.05, 0.10, 0.20};

  core::TextTable table({"delta", "Euclidean", "DUST", "PROUD",
                         "PROUD sat. frac**", "MUNICH*"});
  io::CsvWriter csv({"delta", "Euclidean", "DUST", "PROUD", "PROUD_saturated",
                     "MUNICH"});

  for (double delta : deltas) {
    double overlap[4] = {0.0, 0.0, 0.0, 0.0};
    double proud_saturated = 0.0;
    std::size_t queries = 0;

    for (const auto& dataset : datasets) {
      const auto pdf = uncertain::PerturbDataset(dataset, spec, config.seed);
      // MUNICH on a truncated view (its feasible regime).
      const auto truncated = dataset.Truncated(
          std::min<std::size_t>(24, dataset.size()), 6);
      uncertain::MultiSampleDataset samples;
      if (truncated.ok()) {
        samples = uncertain::PerturbDatasetMultiSample(
            truncated.ValueOrDie(), spec, 5, config.seed + 1);
      }

      measures::Proud proud({.tau = 0.5, .sigma = 0.6});
      measures::Dust dust;
      measures::Munich munich;

      const std::size_t num_queries = std::min<std::size_t>(6, pdf.size());
      for (std::size_t qi = 0; qi < num_queries; ++qi) {
        // ε := distance to the 10th observed neighbor (any sane scale works;
        // the experiment only compares rankings at ε vs (1+δ)ε).
        std::vector<double> euclid(pdf.size(), 0.0);
        for (std::size_t ci = 0; ci < pdf.size(); ++ci) {
          if (ci == qi) continue;
          euclid[ci] = distance::Euclidean(pdf[qi].observations(),
                                           pdf[ci].observations());
        }
        std::vector<double> sorted = euclid;
        std::sort(sorted.begin(), sorted.end());
        const double eps = sorted[std::min<std::size_t>(kTop, sorted.size() - 1)];

        // Exact measures rank by -distance (independent of ε — the overlap
        // is 1 by construction, shown for contrast).
        auto negate = [](std::vector<double> v) {
          for (double& x : v) x = -x;
          return v;
        };
        const auto euclid_rank = TopKByScore(negate(euclid), kTop);
        overlap[0] += OverlapFraction(euclid_rank, euclid_rank);

        std::vector<double> dust_scores(pdf.size(), 0.0);
        for (std::size_t ci = 0; ci < pdf.size(); ++ci) {
          if (ci == qi) continue;
          dust_scores[ci] = -dust.Distance(pdf[qi], pdf[ci]).ValueOr(1e300);
        }
        const auto dust_rank = TopKByScore(dust_scores, kTop);
        overlap[1] += OverlapFraction(dust_rank, dust_rank);

        // PROUD: rank by match probability at ε vs (1+δ)ε.
        auto proud_scores = [&](double e) {
          std::vector<double> scores(pdf.size(), -1.0);
          for (std::size_t ci = 0; ci < pdf.size(); ++ci) {
            if (ci == qi) continue;
            scores[ci] = proud.MatchProbability(pdf[qi].observations(),
                                                pdf[ci].observations(), e);
          }
          return scores;
        };
        const auto proud_at_eps = proud_scores(eps);
        overlap[2] += OverlapFraction(
            TopKByScore(proud_at_eps, kTop),
            TopKByScore(proud_scores(eps * (1.0 + delta)), kTop));
        // Saturated probabilities (numerically 0 or 1) make the top-k
        // ranking depend on tie-breaking alone — the practical face of the
        // paper's "top-k is not suitable" argument.
        std::size_t saturated = 0;
        for (std::size_t ci = 0; ci < proud_at_eps.size(); ++ci) {
          if (ci == qi) continue;
          if (proud_at_eps[ci] < 1e-12 || proud_at_eps[ci] > 1.0 - 1e-12) {
            ++saturated;
          }
        }
        proud_saturated +=
            double(saturated) / double(proud_at_eps.size() - 1);

        // MUNICH on the truncated view.
        if (truncated.ok() && qi < samples.size()) {
          auto munich_scores = [&](double e) {
            std::vector<double> scores(samples.size(), -1.0);
            for (std::size_t ci = 0; ci < samples.size(); ++ci) {
              if (ci == qi) continue;
              scores[ci] = munich
                               .MatchProbability(samples[qi], samples[ci], e,
                                                 config.seed + ci)
                               .ValueOr(0.0);
            }
            return scores;
          };
          // ε for the truncated view: 10th neighbor on sample means.
          std::vector<double> mdist;
          const auto q_means = samples[qi].SampleMeans();
          for (std::size_t ci = 0; ci < samples.size(); ++ci) {
            if (ci == qi) continue;
            mdist.push_back(distance::Euclidean(
                q_means.values(), samples[ci].SampleMeans().values()));
          }
          std::sort(mdist.begin(), mdist.end());
          const double meps = mdist[std::min<std::size_t>(kTop, mdist.size() - 1)];
          overlap[3] += OverlapFraction(
              TopKByScore(munich_scores(meps), kTop),
              TopKByScore(munich_scores(meps * (1.0 + delta)), kTop));
        } else {
          overlap[3] += 1.0;
        }
        ++queries;
      }
    }

    table.AddRow({core::TextTable::Num(delta, 2),
                  core::TextTable::Num(overlap[0] / queries, 3),
                  core::TextTable::Num(overlap[1] / queries, 3),
                  core::TextTable::Num(overlap[2] / queries, 3),
                  core::TextTable::Num(proud_saturated / queries, 3),
                  core::TextTable::Num(overlap[3] / queries, 3)});
    csv.AddNumericRow({delta, overlap[0] / queries, overlap[1] / queries,
                       overlap[2] / queries, proud_saturated / queries,
                       overlap[3] / queries});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "*MUNICH measured on truncated series (length 6, 5 samples/pt) where "
      "its probabilities are exact.\n"
      "**fraction of candidates whose PROUD probability is numerically 0 or "
      "1: those top-k slots are\n  decided by tie-breaking, not similarity.\n"
      "Reading: 1.000 = identical top-10 at eps and (1+delta)*eps. Exact "
      "distances are invariant by\nconstruction; the probabilistic rankings "
      "drift (MUNICH) or saturate into ties (PROUD) — the\npaper's reason to "
      "compare techniques on the matching task instead.\n\n");
  EmitCsv(config, "supp_topk_instability.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
