/// \file bench_fig09_mixed_dist.cpp
/// \brief Figure 9 — F1 per dataset when each point's error is drawn from a
/// mixture of uniform, normal and exponential families (20% σ = 1.0, 80%
/// σ = 0.4). "This situation cannot be handled by PROUD."
///
/// Paper expectation: "the accuracy of all techniques (PROUD, DUST, and
/// Euclidean) is almost the same, and consistently lower" than Figure 8.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace uts;
  bench::BenchConfig config = bench::ParseArgs(
      argc, argv, "bench_fig09_mixed_dist",
      "Figure 9: per-dataset F1, mixed-family error (uniform+normal+exp)");
  config.proud_sigma = 0.7;

  const auto spec = uncertain::ErrorSpec::MixedKind(0.2, 1.0, 0.4);
  core::EuclideanMatcher euclid;
  core::DustMatcher dust;
  core::ProudMatcher proud(0.5);
  return bench::RunPerDatasetFigure(
      "Figure 9", "Euclidean vs DUST vs PROUD, mixed-family error", spec,
      {&euclid, &dust, &proud}, config, "fig09_mixed_dist.csv");
}
