/// \file bench_micro_kernels.cpp
/// \brief google-benchmark microbenchmarks of the distance kernels backing
/// the paper's timing claims (Figures 11/12): Euclidean vs DUST vs PROUD
/// per-pair cost, DTW, MUNICH estimators, the moving-average filters, and
/// the Haar transform.

#include <benchmark/benchmark.h>

#include <vector>

#include "distance/dtw.hpp"
#include "distance/lp.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "ts/filters.hpp"
#include "uncertain/perturb.hpp"
#include "wavelet/haar.hpp"

namespace {

using namespace uts;

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = rng.Gaussian();
  return xs;
}

uncertain::UncertainSeries RandomUncertain(std::size_t n, std::uint64_t seed,
                                           prob::ErrorKind kind) {
  auto err = prob::MakeError(kind, 0.5);
  return uncertain::UncertainSeries(
      RandomSeries(n, seed),
      std::vector<prob::ErrorDistributionPtr>(n, err));
}

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 1);
  const auto b = RandomSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::Euclidean(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Euclidean)->Arg(64)->Arg(290)->Arg(1024);

void BM_EuclideanEarlyAbandon(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 3);
  const auto b = RandomSeries(n, 4);
  const double threshold_sq = 0.1 * distance::SquaredEuclidean(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::SquaredEuclideanEarlyAbandon(a, b, threshold_sq));
  }
}
BENCHMARK(BM_EuclideanEarlyAbandon)->Arg(290);

void BM_ProudPair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 5);
  const auto b = RandomSeries(n, 6);
  measures::Proud proud({.tau = 0.9, .sigma = 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(proud.MatchProbability(a, b, 3.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProudPair)->Arg(64)->Arg(290)->Arg(1024);

void BM_DustPairClosedForm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = RandomUncertain(n, 7, prob::ErrorKind::kNormal);
  const auto y = RandomUncertain(n, 8, prob::ErrorKind::kNormal);
  measures::Dust dust;
  (void)dust.Distance(x, y);  // warm the table cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(dust.Distance(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DustPairClosedForm)->Arg(64)->Arg(290)->Arg(1024);

void BM_DustPairTableLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = RandomUncertain(n, 9, prob::ErrorKind::kUniform);
  const auto y = RandomUncertain(n, 10, prob::ErrorKind::kUniform);
  measures::Dust dust;
  (void)dust.Distance(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dust.Distance(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DustPairTableLookup)->Arg(290);

void BM_DustTableBuild(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  auto err = prob::MakeUniformError(0.5);
  measures::DustOptions options;
  options.table_size = cells;
  for (auto _ : state) {
    auto table = measures::DustTable::Build(*err, *err, options);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_DustTableBuild)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_DtwFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 11);
  const auto b = RandomSeries(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::Dtw(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DtwFull)->Arg(64)->Arg(290);

void BM_DtwBanded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 13);
  const auto b = RandomSeries(n, 14);
  distance::DtwOptions options;
  options.band_radius = n / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::Dtw(a, b, options));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(290);

void BM_MunichExact(benchmark::State& state) {
  // The paper's Figure 4 configuration: length 6, 5 samples/timestamp.
  const ts::TimeSeries exact(RandomSeries(6, 15));
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto x = uncertain::PerturbMultiSample(exact, spec, 5, 16);
  const auto y = uncertain::PerturbMultiSample(exact, spec, 5, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measures::Munich::ExactMatchProbability(x, y, 2.0));
  }
}
BENCHMARK(BM_MunichExact)->Unit(benchmark::kMillisecond);

void BM_MunichMonteCarlo(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries exact(RandomSeries(64, 18));
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto x = uncertain::PerturbMultiSample(exact, spec, 5, 19);
  const auto y = uncertain::PerturbMultiSample(exact, spec, 5, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measures::Munich::MonteCarloMatchProbability(
        x, y, 8.0, samples, 21));
  }
}
BENCHMARK(BM_MunichMonteCarlo)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_MunichBounds(benchmark::State& state) {
  const ts::TimeSeries exact(RandomSeries(290, 22));
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto x = uncertain::PerturbMultiSample(exact, spec, 5, 23);
  const auto y = uncertain::PerturbMultiSample(exact, spec, 5, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measures::Munich::EuclideanBounds(x, y));
  }
}
BENCHMARK(BM_MunichBounds);

void BM_UmaFilter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = RandomSeries(n, 25);
  const std::vector<double> sigmas(n, 0.5);
  ts::FilterOptions options;
  options.half_window = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::UncertainMovingAverage(values, sigmas, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UmaFilter)->Arg(290)->Arg(1024);

void BM_UemaFilter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = RandomSeries(n, 26);
  const std::vector<double> sigmas(n, 0.5);
  ts::FilterOptions options;
  options.half_window = 2;
  options.lambda = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::UncertainExponentialMovingAverage(values, sigmas, options));
  }
}
BENCHMARK(BM_UemaFilter)->Arg(290);

void BM_HaarTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = RandomSeries(n, 27);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wavelet::HaarTransform(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HaarTransform)->Arg(256)->Arg(1024);

void BM_PerturbSeries(benchmark::State& state) {
  const ts::TimeSeries exact(RandomSeries(290, 28));
  const auto spec = uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uncertain::PerturbSeries(exact, spec, ++seed));
  }
}
BENCHMARK(BM_PerturbSeries);

}  // namespace

int main(int argc, char** argv) {
  // Tolerate the harness-style flags the bench loop passes uniformly.
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg == "--paper") continue;
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
