/// \file bench_micro_kernels.cpp
/// \brief google-benchmark microbenchmarks of the distance kernels backing
/// the paper's timing claims (Figures 11/12): Euclidean vs DUST vs PROUD
/// per-pair cost, DTW, MUNICH estimators, the moving-average filters, and
/// the Haar transform — plus the query-engine kernels: SoA-batched vs
/// AoS-callback Euclidean scans and the threads-scaling sweep of the k-NN
/// ground-truth build.
///
/// Every run also writes its results as JSON (default
/// `micro_kernels.json`, override with --benchmark_out=...) so successive
/// PRs can track the perf trajectory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "distance/batch.hpp"
#include "distance/simd.hpp"
#include "distance/dtw.hpp"
#include "distance/lp.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "query/engine.hpp"
#include "query/search.hpp"
#include "query/uncertain_engine.hpp"
#include "ts/buffer_pool.hpp"
#include "ts/dataset.hpp"
#include "ts/filters.hpp"
#include "ts/store_view.hpp"
#include "uncertain/perturb.hpp"
#include "wavelet/haar.hpp"

namespace {

using namespace uts;

/// Build type of *this* binary. The stock google-benchmark JSON context key
/// "library_build_type" describes how the benchmark *library* was built
/// (distro packages often report "debug" there even for -O3 benchmark
/// binaries); what matters for kernel timings is this value.
const char* UtsBuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// STREAM-like triad peak (a[i] = b[i] + s*c[i], 24 bytes/element) measured
/// in this binary over three 64 MiB arrays, best of three passes: the
/// memory-bandwidth ceiling that peak_fraction counters are normalized
/// against. The arrays far exceed the LLC, so the loop is bandwidth-bound
/// and its ISA (baseline, not AVX2) barely matters.
double TriadPeakGBps() {
  static const double peak = [] {
    const std::size_t n = std::size_t{8} << 20;  // 8 Mi doubles per array
    std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const double s = 0.42;
      for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
      benchmark::DoNotOptimize(a.data());
      const auto t1 = std::chrono::steady_clock::now();
      const double sec = std::chrono::duration<double>(t1 - t0).count();
      if (sec > 0.0) {
        best = std::max(best, 24.0 * static_cast<double>(n) / sec / 1e9);
      }
    }
    return best;
  }();
  return peak;
}

/// Attach the per-kernel bandwidth counters: achieved_GBps (memory traffic
/// the kernel streams per second) and peak_fraction (that traffic divided by
/// the in-binary triad peak). `bytes_per_iteration` counts the candidate
/// rows plus outputs one benchmark iteration touches.
void SetBandwidthCounters(benchmark::State& state, double bytes_per_iteration) {
  using benchmark::Counter;
  state.counters["achieved_GBps"] =
      Counter(bytes_per_iteration / 1e9, Counter::kIsIterationInvariantRate);
  state.counters["peak_fraction"] =
      Counter(bytes_per_iteration / (TriadPeakGBps() * 1e9),
              Counter::kIsIterationInvariantRate);
}

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = rng.Gaussian();
  return xs;
}

uncertain::UncertainSeries RandomUncertain(std::size_t n, std::uint64_t seed,
                                           prob::ErrorKind kind) {
  auto err = prob::MakeError(kind, 0.5);
  return uncertain::UncertainSeries(
      RandomSeries(n, seed),
      std::vector<prob::ErrorDistributionPtr>(n, err));
}

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 1);
  const auto b = RandomSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::Euclidean(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Euclidean)->Arg(64)->Arg(290)->Arg(1024);

void BM_EuclideanEarlyAbandon(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 3);
  const auto b = RandomSeries(n, 4);
  const double threshold_sq = 0.1 * distance::SquaredEuclidean(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::SquaredEuclideanEarlyAbandon(a, b, threshold_sq));
  }
}
BENCHMARK(BM_EuclideanEarlyAbandon)->Arg(290);

void BM_ProudPair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 5);
  const auto b = RandomSeries(n, 6);
  measures::Proud proud({.tau = 0.9, .sigma = 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(proud.MatchProbability(a, b, 3.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProudPair)->Arg(64)->Arg(290)->Arg(1024);

void BM_DustPairClosedForm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = RandomUncertain(n, 7, prob::ErrorKind::kNormal);
  const auto y = RandomUncertain(n, 8, prob::ErrorKind::kNormal);
  measures::Dust dust;
  (void)dust.Distance(x, y);  // warm the table cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(dust.Distance(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DustPairClosedForm)->Arg(64)->Arg(290)->Arg(1024);

void BM_DustPairTableLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = RandomUncertain(n, 9, prob::ErrorKind::kUniform);
  const auto y = RandomUncertain(n, 10, prob::ErrorKind::kUniform);
  measures::Dust dust;
  (void)dust.Distance(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dust.Distance(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DustPairTableLookup)->Arg(290);

void BM_DustTableBuild(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  auto err = prob::MakeUniformError(0.5);
  measures::DustOptions options;
  options.table_size = cells;
  for (auto _ : state) {
    auto table = measures::DustTable::Build(*err, *err, options);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_DustTableBuild)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_DtwFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 11);
  const auto b = RandomSeries(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::Dtw(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DtwFull)->Arg(64)->Arg(290);

void BM_DtwBanded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 13);
  const auto b = RandomSeries(n, 14);
  distance::DtwOptions options;
  options.band_radius = n / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::Dtw(a, b, options));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(290);

void BM_MunichExact(benchmark::State& state) {
  // The paper's Figure 4 configuration: length 6, 5 samples/timestamp.
  const ts::TimeSeries exact(RandomSeries(6, 15));
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto x = uncertain::PerturbMultiSample(exact, spec, 5, 16);
  const auto y = uncertain::PerturbMultiSample(exact, spec, 5, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measures::Munich::ExactMatchProbability(x, y, 2.0));
  }
}
BENCHMARK(BM_MunichExact)->Unit(benchmark::kMillisecond);

void BM_MunichMonteCarlo(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries exact(RandomSeries(64, 18));
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto x = uncertain::PerturbMultiSample(exact, spec, 5, 19);
  const auto y = uncertain::PerturbMultiSample(exact, spec, 5, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measures::Munich::MonteCarloMatchProbability(
        x, y, 8.0, samples, 21));
  }
}
BENCHMARK(BM_MunichMonteCarlo)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_MunichBounds(benchmark::State& state) {
  const ts::TimeSeries exact(RandomSeries(290, 22));
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto x = uncertain::PerturbMultiSample(exact, spec, 5, 23);
  const auto y = uncertain::PerturbMultiSample(exact, spec, 5, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measures::Munich::EuclideanBounds(x, y));
  }
}
BENCHMARK(BM_MunichBounds);

void BM_UmaFilter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = RandomSeries(n, 25);
  const std::vector<double> sigmas(n, 0.5);
  ts::FilterOptions options;
  options.half_window = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::UncertainMovingAverage(values, sigmas, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UmaFilter)->Arg(290)->Arg(1024);

void BM_UemaFilter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = RandomSeries(n, 26);
  const std::vector<double> sigmas(n, 0.5);
  ts::FilterOptions options;
  options.half_window = 2;
  options.lambda = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::UncertainExponentialMovingAverage(values, sigmas, options));
  }
}
BENCHMARK(BM_UemaFilter)->Arg(290);

void BM_HaarTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = RandomSeries(n, 27);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wavelet::HaarTransform(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HaarTransform)->Arg(256)->Arg(1024);

// --- Query-engine kernels: SoA-batched vs AoS-callback ----------------------

ts::Dataset RandomDataset(std::size_t n_series, std::size_t length,
                          std::uint64_t seed) {
  ts::Dataset d("bench");
  for (std::size_t i = 0; i < n_series; ++i) {
    d.Add(ts::TimeSeries(RandomSeries(length, seed + i)));
  }
  return d;
}

// Packed() stores are resident, so their single block's pin is a plain
// pointer copy and the returned RowBlock outlives the guard.
ts::RowBlock Block(const ts::SoaStore& store) {
  const ts::StoreView view(store);
  return ts::PinOrAbort(view, 0).block();
}

// The seed's scan: vector-of-vectors storage, one std::function dispatch
// and one scalar Euclidean (with sqrt) per candidate.
void BM_ScanEuclideanCallbackAoS(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 100);
  const ts::TimeSeries& query = d[0];
  const query::DistanceToFn distance_to = [&](std::size_t i) {
    return distance::Euclidean(query.values(), d[i].values());
  };
  std::vector<double> out(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = distance_to(i);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_ScanEuclideanCallbackAoS)->Arg(64)->Arg(290)->Arg(1024);

// The engine's scan: contiguous SoA rows through the blocked batch kernel.
void BM_ScanEuclideanBatchSoA(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 100);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  std::vector<double> out(n);
  for (auto _ : state) {
    distance::SquaredEuclideanBatch(block.row(0), store, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
  SetBandwidthCounters(state, 8.0 * static_cast<double>(n * len + n));
}
BENCHMARK(BM_ScanEuclideanBatchSoA)->Arg(64)->Arg(290)->Arg(1024);

// The all-pairs building block: kQueryBlock queries share each candidate
// row load, overlapping the per-pair FP-add chains.
void BM_ScanEuclideanMultiQueryBatchSoA(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 100);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  std::vector<double> out(distance::kQueryBlock * n);
  for (auto _ : state) {
    distance::SquaredEuclideanMultiQueryBatch(block, 0,
                                              distance::kQueryBlock, block,
                                              0, n, out, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * distance::kQueryBlock * n *
                          len);
  SetBandwidthCounters(
      state, 8.0 * static_cast<double>(n * len + distance::kQueryBlock * n));
}
BENCHMARK(BM_ScanEuclideanMultiQueryBatchSoA)->Arg(64)->Arg(290)->Arg(1024);

void BM_ScanEuclideanEarlyAbandonBatchSoA(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 100);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  std::vector<double> full(n);
  distance::SquaredEuclideanBatch(block.row(0), store, full);
  std::vector<double> sorted = full;
  std::sort(sorted.begin(), sorted.end());
  const double threshold_sq = sorted[n / 10];  // keep ~10% of candidates
  std::vector<double> out(n);
  for (auto _ : state) {
    distance::SquaredEuclideanEarlyAbandonBatch(block.row(0), store,
                                                threshold_sq, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_ScanEuclideanEarlyAbandonBatchSoA)->Arg(290);

// --- Kernel dispatch: scalar reference vs runtime-resolved AVX2 -------------
// One benchmark per kernel family and level, same data, driven through the
// distance::KernelDispatch tables the engines execute. The *_Avx2 variants
// skip (with an error note in the JSON) on hardware without AVX2+FMA, so a
// baseline recorded on wider hardware never silently compares scalar runs.

bool RequireAvx2(benchmark::State& state) {
  if (distance::ResolveDispatch(distance::SimdMode::kAuto).level !=
      distance::SimdLevel::kAvx2) {
    state.SkipWithError("AVX2 unavailable (hardware or UNCERTTS_FORCE_SCALAR)");
    return false;
  }
  return true;
}

void ScanEuclideanKernel(benchmark::State& state,
                         const distance::KernelDispatch& table) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const ts::Dataset d = RandomDataset(n, len, 100);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  std::vector<double> out(n);
  for (auto _ : state) {
    table.squared_euclidean_range(block.row(0), block, 0, n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
  SetBandwidthCounters(state, 8.0 * static_cast<double>(n * len + n));
}

// The acceptance-gate pair: blocked 1-vs-all squared Euclidean at length
// 1024, single-threaded, scalar vs AVX2; tools/check_bench_regression.py
// enforces the minimum speedup between the two. Args are {length,
// candidate count}. The gated shape keeps the candidate block at 1 MiB —
// L2-resident, the same block size (kCandidateTileBytes) the engine's
// tiled all-pairs path replays from cache — so it measures kernel
// throughput. The 512-candidate shape (4 MiB, streamed from uncore) is
// also recorded: there both levels converge toward the machine's memory
// bandwidth, which is the honest ceiling for cold one-shot scans.
void BM_ScanEuclideanBatchSoA_Scalar(benchmark::State& state) {
  ScanEuclideanKernel(state, distance::ScalarDispatch());
}
BENCHMARK(BM_ScanEuclideanBatchSoA_Scalar)
    ->Args({1024, 128})
    ->Args({1024, 512})
    ->Args({64, 512});

void BM_ScanEuclideanBatchSoA_Avx2(benchmark::State& state) {
  if (!RequireAvx2(state)) return;
  ScanEuclideanKernel(state, distance::Avx2Dispatch());
}
BENCHMARK(BM_ScanEuclideanBatchSoA_Avx2)
    ->Args({1024, 128})
    ->Args({1024, 512})
    ->Args({64, 512});

void MultiQueryKernel(benchmark::State& state,
                      const distance::KernelDispatch& table) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 100);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  std::vector<double> out(distance::kQueryBlock * n);
  for (auto _ : state) {
    table.squared_euclidean_multi_query(block, 0, distance::kQueryBlock,
                                        block, 0, n, out, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * distance::kQueryBlock * n *
                          len);
  SetBandwidthCounters(
      state, 8.0 * static_cast<double>(n * len + distance::kQueryBlock * n));
}

void BM_ScanEuclideanMultiQuery_Scalar(benchmark::State& state) {
  MultiQueryKernel(state, distance::ScalarDispatch());
}
BENCHMARK(BM_ScanEuclideanMultiQuery_Scalar)->Arg(1024);

void BM_ScanEuclideanMultiQuery_Avx2(benchmark::State& state) {
  if (!RequireAvx2(state)) return;
  MultiQueryKernel(state, distance::Avx2Dispatch());
}
BENCHMARK(BM_ScanEuclideanMultiQuery_Avx2)->Arg(1024);

void DustClosedFormKernel(benchmark::State& state,
                          const distance::KernelDispatch& table) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 101);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  distance::DustLut lut;
  lut.scale = 1.0;  // values == nullptr => closed form, no table loads
  std::vector<double> out(n);
  for (auto _ : state) {
    table.dust_range(block.row(0), block, lut, 0, n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
  SetBandwidthCounters(state, 8.0 * static_cast<double>(n * len + n));
}

void BM_DustKernelClosedForm_Scalar(benchmark::State& state) {
  DustClosedFormKernel(state, distance::ScalarDispatch());
}
BENCHMARK(BM_DustKernelClosedForm_Scalar)->Arg(1024);

void BM_DustKernelClosedForm_Avx2(benchmark::State& state) {
  if (!RequireAvx2(state)) return;
  DustClosedFormKernel(state, distance::Avx2Dispatch());
}
BENCHMARK(BM_DustKernelClosedForm_Avx2)->Arg(1024);

void DustLookupKernel(benchmark::State& state,
                      const distance::KernelDispatch& table) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 102);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  const std::size_t cells = 2048;
  std::vector<double> values(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    values[i] = 0.1 + 0.001 * static_cast<double>(i);
  }
  distance::DustLut lut;
  lut.values = values.data();
  lut.size = cells;
  lut.delta_max = 16.0;
  lut.step = lut.delta_max / static_cast<double>(cells - 1);
  std::vector<double> out(n);
  for (auto _ : state) {
    table.dust_range(block.row(0), block, lut, 0, n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
  SetBandwidthCounters(state, 8.0 * static_cast<double>(n * len + n));
}

void BM_DustKernelLookup_Scalar(benchmark::State& state) {
  DustLookupKernel(state, distance::ScalarDispatch());
}
BENCHMARK(BM_DustKernelLookup_Scalar)->Arg(1024);

void BM_DustKernelLookup_Avx2(benchmark::State& state) {
  if (!RequireAvx2(state)) return;
  DustLookupKernel(state, distance::Avx2Dispatch());
}
BENCHMARK(BM_DustKernelLookup_Avx2)->Arg(1024);

void ProudMomentKernel(benchmark::State& state,
                       const distance::KernelDispatch& table) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  const ts::Dataset d = RandomDataset(n, len, 103);
  const auto packed = d.Packed();
  const ts::SoaStore& store = *packed;
  const ts::RowBlock block = Block(store);
  std::vector<double> mean(n), var(n);
  for (auto _ : state) {
    table.proud_moment_range(block.row(0), block, 0.5, 0, n, mean, var);
    benchmark::DoNotOptimize(mean.data());
    benchmark::DoNotOptimize(var.data());
  }
  state.SetItemsProcessed(state.iterations() * n * len);
  SetBandwidthCounters(state, 8.0 * static_cast<double>(n * len + 2 * n));
}

void BM_ProudMomentKernel_Scalar(benchmark::State& state) {
  ProudMomentKernel(state, distance::ScalarDispatch());
}
BENCHMARK(BM_ProudMomentKernel_Scalar)->Arg(1024);

void BM_ProudMomentKernel_Avx2(benchmark::State& state) {
  if (!RequireAvx2(state)) return;
  ProudMomentKernel(state, distance::Avx2Dispatch());
}
BENCHMARK(BM_ProudMomentKernel_Avx2)->Arg(1024);

// The bandwidth ceiling itself as a benchmark: its achieved_GBps is what
// every peak_fraction counter is normalized by (to within run-to-run noise;
// the normalization uses the cached best-of-three TriadPeakGBps pass).
void BM_StreamTriadPeak(benchmark::State& state) {
  const std::size_t n = std::size_t{8} << 20;
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);
  const double s = 0.42;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
    benchmark::DoNotOptimize(a.data());
  }
  SetBandwidthCounters(state, 24.0 * static_cast<double>(n));
}
BENCHMARK(BM_StreamTriadPeak)->Unit(benchmark::kMillisecond);

// End-to-end 10-NN ground-truth build (every series as a query), the
// dominant cost of the paper's evaluation loop — seed path vs engine.
void BM_GroundTruthKnnSeedPath(benchmark::State& state) {
  const ts::Dataset d = RandomDataset(256, 128, 200);
  for (auto _ : state) {
    for (std::size_t q = 0; q < d.size(); ++q) {
      const ts::TimeSeries& query = d[q];
      benchmark::DoNotOptimize(query::KNearest(
          d.size(), q, 10, [&](std::size_t i) {
            return distance::Euclidean(query.values(), d[i].values());
          }));
    }
  }
  state.SetItemsProcessed(state.iterations() * d.size() * d.size() * 128);
}
BENCHMARK(BM_GroundTruthKnnSeedPath)->Unit(benchmark::kMillisecond);

// Threads-scaling sweep of the same build on the engine (Arg = threads).
void BM_GroundTruthKnnEngineThreads(benchmark::State& state) {
  const ts::Dataset d = RandomDataset(256, 128, 200);
  query::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  const query::DistanceMatrixEngine engine(d, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.AllKNearestEuclidean(10));
  }
  state.SetItemsProcessed(state.iterations() * d.size() * d.size() * 128);
}
BENCHMARK(BM_GroundTruthKnnEngineThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Storage-tier twin of the single-thread build above: the same dataset
// with the SoA store split into 32-row (32 KiB) blocks and paged through a
// ts::BufferPool whose budget keeps 2 of the 8 blocks resident, so every
// sweep pins, evicts and re-faults blocks from the spill log. The
// regression gate pairs this against BM_GroundTruthKnnEngineThreads/1 —
// the paged/resident time ratio bounds the pool's pin+fault overhead
// independent of machine speed — and holds a floor under the exported
// faults_per_iter counter, so a run that silently stopped paging (budget
// misapplied, store built resident) cannot pass as "cheap".
void BM_GroundTruthKnnEnginePaged(benchmark::State& state) {
  const ts::Dataset d = RandomDataset(256, 128, 200);
  ts::BufferPool::Options pool_options;
  pool_options.budget_bytes = std::size_t{64} << 10;
  auto pool = ts::BufferPool::Create(pool_options).ValueOrDie();
  query::EngineOptions options;
  options.threads = 1;
  options.buffer_pool = pool;
  options.block_rows = 32;  // packed dataset is 256 KiB = 8 such blocks
  const query::DistanceMatrixEngine engine(d, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.AllKNearestEuclidean(10));
  }
  state.SetItemsProcessed(state.iterations() * d.size() * d.size() * 128);
  state.counters["faults_per_iter"] =
      static_cast<double>(pool->stats().faults) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_GroundTruthKnnEnginePaged)->Unit(benchmark::kMillisecond);

// --- Index cascade: prune-before-score 10-NN on structured data --------------

// Random walks concentrate their energy in the low-frequency Haar
// coefficients, so the synopsis prefix captures most of each pairwise
// distance — the regime the index targets (iid noise, by contrast, leaves
// nothing for a 16-coefficient prefix to prune). The indexed/unindexed twin
// runs share one dataset so their time ratio isolates the cascade, and the
// indexed run exports its pruned_fraction: the regression gate
// (tools/check_bench_regression.py) holds a floor under it, so an index
// that silently stops pruning — or stops being built — fails CI loudly.
ts::Dataset RandomWalkDataset(std::size_t n_series, std::size_t length,
                              std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("bench-walk");
  for (std::size_t i = 0; i < n_series; ++i) {
    std::vector<double> values(length);
    double level = rng.Gaussian();
    for (double& v : values) {
      level += rng.Gaussian();
      v = level;
    }
    d.Add(ts::TimeSeries(std::move(values)));
  }
  return d;
}

void BM_GroundTruthKnnEngineWalk(benchmark::State& state) {
  const ts::Dataset d = RandomWalkDataset(256, 512, 210);
  const query::DistanceMatrixEngine engine(d, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.AllKNearestEuclidean(10));
  }
  state.SetItemsProcessed(state.iterations() * d.size() * d.size() * d[0].size());
}
BENCHMARK(BM_GroundTruthKnnEngineWalk)->Unit(benchmark::kMillisecond);

void BM_GroundTruthKnnEngineWalkIndexed(benchmark::State& state) {
  const ts::Dataset d = RandomWalkDataset(256, 512, 210);
  query::EngineOptions options;
  options.index.enabled = true;
  const query::DistanceMatrixEngine engine(d, options);
  // The cascade is deterministic, so one pre-loop run yields the exact
  // per-iteration work accounting without perturbing the timed loop.
  index::SearchCost cost;
  benchmark::DoNotOptimize(engine.AllKNearestEuclidean(10, 0, &cost));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.AllKNearestEuclidean(10));
  }
  state.SetItemsProcessed(state.iterations() * d.size() * d.size() * d[0].size());
  const double total = static_cast<double>(cost.candidates_total);
  state.counters["pruned_fraction"] =
      static_cast<double>(cost.pruned_lower_bound) / total;
  state.counters["touched_fraction"] =
      static_cast<double>(cost.candidates_touched) / total;
}
BENCHMARK(BM_GroundTruthKnnEngineWalkIndexed)->Unit(benchmark::kMillisecond);

// --- Uncertain-measure sweeps: scalar path vs UncertainEngine ----------------

uncertain::UncertainDataset RandomUncertainDataset(std::size_t n_series,
                                                   std::size_t length,
                                                   std::uint64_t seed,
                                                   prob::ErrorKind kind,
                                                   double sigma) {
  auto err = prob::MakeError(kind, sigma);
  uncertain::UncertainDataset d;
  d.name = "bench-uncertain";
  for (std::size_t i = 0; i < n_series; ++i) {
    d.series.emplace_back(
        RandomSeries(length, seed + i),
        std::vector<prob::ErrorDistributionPtr>(length, err));
  }
  return d;
}

// The pre-engine path: one Dust::Distance call per candidate, per-point
// memoized table resolution, vector-of-vectors storage.
void BM_DustScanScalarClosedForm(benchmark::State& state) {
  const std::size_t n = 512, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 300, prob::ErrorKind::kNormal, 0.5);
  measures::Dust dust;
  (void)dust.Distance(d[0], d[1]);  // warm the table cache
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(dust.Distance(d[0], d[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_DustScanScalarClosedForm)->Unit(benchmark::kMillisecond);

// The engine's sweep: SoA rows through the closed-form DustBatchRange fast
// path (dust(Δ) = |Δ| / sqrt(2(σx²+σy²)), no table loads).
void BM_DustScanEngineClosedForm(benchmark::State& state) {
  const std::size_t n = 512, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 300, prob::ErrorKind::kNormal, 0.5);
  auto engine = query::UncertainEngine::Create(d).ValueOrDie();
  if (!engine->BuildDustTables().ok()) state.SkipWithError("table build");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->DustDistances(0));
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_DustScanEngineClosedForm)->Unit(benchmark::kMillisecond);

// Table-lookup flavor (uniform error => numeric tables): scalar vs the
// blocked DustLut batch kernel.
void BM_DustScanScalarLookup(benchmark::State& state) {
  const std::size_t n = 512, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 301, prob::ErrorKind::kUniform, 0.5);
  measures::Dust dust;
  (void)dust.Distance(d[0], d[1]);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(dust.Distance(d[0], d[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_DustScanScalarLookup)->Unit(benchmark::kMillisecond);

void BM_DustScanEngineLookup(benchmark::State& state) {
  const std::size_t n = 512, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 301, prob::ErrorKind::kUniform, 0.5);
  auto engine = query::UncertainEngine::Create(d).ValueOrDie();
  if (!engine->BuildDustTables().ok()) state.SkipWithError("table build");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->DustDistances(0));
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_DustScanEngineLookup)->Unit(benchmark::kMillisecond);

// PROUD ε_norm sweep: per-candidate scalar MatchProbability calls vs the
// fused constant-σ moment batch kernel over the SoA store.
void BM_ProudScanScalar(benchmark::State& state) {
  const std::size_t n = 512, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 302, prob::ErrorKind::kNormal, 0.5);
  measures::Proud proud({.tau = 0.9, .sigma = 0.5});
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          proud.MatchProbability(d[0].observations(), d[i].observations(),
                                 8.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_ProudScanScalar)->Unit(benchmark::kMillisecond);

void BM_ProudScanEngineMomentBatch(benchmark::State& state) {
  const std::size_t n = 512, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 302, prob::ErrorKind::kNormal, 0.5);
  query::UncertainEngineOptions options;
  options.proud_sigma = 0.5;
  auto engine = query::UncertainEngine::Create(d, options).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->ProudMatchProbabilities(0, 8.0));
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_ProudScanEngineMomentBatch)->Unit(benchmark::kMillisecond);

// The general-moment sweep reads the precomputed m2/m3/m4 columns instead
// of six virtual CentralMoment calls per point pair.
void BM_ProudScanGeneralScalar(benchmark::State& state) {
  const std::size_t n = 128, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 303, prob::ErrorKind::kExponential, 0.5);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          measures::Proud::MatchProbabilityGeneral(d[0], d[i], 8.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_ProudScanGeneralScalar)->Unit(benchmark::kMillisecond);

void BM_ProudScanGeneralEngineColumns(benchmark::State& state) {
  const std::size_t n = 128, len = 290;
  const auto d =
      RandomUncertainDataset(n, len, 303, prob::ErrorKind::kExponential, 0.5);
  auto engine = query::UncertainEngine::Create(d).ValueOrDie();
  if (!engine->BuildProudMomentColumns().ok()) {
    state.SkipWithError("moment columns");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->ProudGeneralMatchProbabilities(0, 8.0));
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_ProudScanGeneralEngineColumns)->Unit(benchmark::kMillisecond);

// MUNICH bounds filter: per-pair interval rescans vs the engine's
// precomputed min/max columns (both feed the same estimator afterwards).
void BM_MunichBoundsFromColumns(benchmark::State& state) {
  const std::size_t n = 64, len = 290;
  ts::Dataset exact("bench");
  for (std::size_t i = 0; i < n; ++i) {
    exact.Add(ts::TimeSeries(RandomSeries(len, 304 + i)));
  }
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto pdf = uncertain::PerturbDataset(exact, spec, 305);
  const auto samples =
      uncertain::PerturbDatasetMultiSample(exact, spec, 5, 306);
  query::UncertainEngineOptions options;
  // ε = 0 keeps every pair out of reach: the sweep cost is the bounds
  // filter alone (certain-reject for all candidates).
  auto engine = query::UncertainEngine::Create(pdf, options).ValueOrDie();
  if (!engine->AttachSamples(samples).ok()) state.SkipWithError("attach");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->MunichMatchProbabilities(0, 0.0));
  }
  state.SetItemsProcessed(state.iterations() * n * len);
}
BENCHMARK(BM_MunichBoundsFromColumns)->Unit(benchmark::kMillisecond);

void BM_PerturbSeries(benchmark::State& state) {
  const ts::TimeSeries exact(RandomSeries(290, 28));
  const auto spec = uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uncertain::PerturbSeries(exact, spec, ++seed));
  }
}
BENCHMARK(BM_PerturbSeries);

}  // namespace

int main(int argc, char** argv) {
  // Tolerate the harness-style flags the bench loop passes uniformly.
  std::vector<char*> filtered;
  bool has_out = false;
  bool has_format = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg == "--paper") continue;
    if (arg == "--force-scalar") {
      // Engines and ResolveDispatch(kAuto) consult the override at
      // construction/resolve time, so one env flip pins every benchmark
      // (the *_Avx2 kernel variants then skip with an error note).
      setenv("UNCERTTS_FORCE_SCALAR", "1", 1);
      continue;
    }
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
    if (arg.rfind("--benchmark_out_format=", 0) == 0) has_format = true;
    filtered.push_back(argv[i]);
  }
  // Always leave an artifact behind so perf is trackable across PRs; never
  // override flags the caller passed explicitly.
  std::string default_out = "--benchmark_out=micro_kernels.json";
  std::string default_fmt = "--benchmark_out_format=json";
  if (!has_out) filtered.push_back(default_out.data());
  if (!has_format) filtered.push_back(default_fmt.data());
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  // The stock "library_build_type" context key describes how the
  // google-benchmark *library* was built (distro packages often say "debug"
  // there even under -O3). Emit the same key for this binary's own build
  // type: AddCustomContext appends it after the stock one, and JSON parsers
  // that keep the last duplicate key (e.g. Python's json.load, used by
  // tools/check_bench_regression.py) see the value that actually matters
  // for kernel timings.
  benchmark::AddCustomContext("library_build_type", UtsBuildType());
  benchmark::AddCustomContext("uts_build_type", UtsBuildType());
  benchmark::AddCustomContext(
      "uts_simd_level",
      distance::SimdLevelName(
          distance::ResolveDispatch(distance::SimdMode::kAuto).level));
  benchmark::AddCustomContext("triad_peak_GBps",
                              std::to_string(TriadPeakGBps()));
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
