/// \file bench_fig06_proud_pr.cpp
/// \brief Figure 6 — precision (a) and recall (b) of PROUD, averaged over
/// all datasets, vs error standard deviation, for the three error families.
///
/// Paper expectation: "recall always remains relatively high (between
/// 63%-83%). On the contrary, precision is heavily affected, decreasing
/// from 70% to a mere 16% as standard deviation increases from 0.2 to 2."

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig06_proud_pr",
      "Figure 6: PROUD precision/recall vs error stddev, all datasets");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Figure 6", "PROUD at optimal tau, precision & recall vs sigma",
              config);

  const char* kDistNames[] = {"uniform", "normal", "exponential"};
  const prob::ErrorKind kKinds[] = {prob::ErrorKind::kUniform,
                                    prob::ErrorKind::kNormal,
                                    prob::ErrorKind::kExponential};
  io::CsvWriter csv(
      {"error_distribution", "sigma", "precision", "recall", "f1"});

  core::ProudMatcher proud(0.5);

  core::TextTable precision_table(
      {"sigma", "uniform", "normal", "exponential"});
  core::TextTable recall_table({"sigma", "uniform", "normal", "exponential"});

  for (double sigma : SigmaGrid()) {
    std::vector<std::string> p_row{core::TextTable::Num(sigma, 1)};
    std::vector<std::string> r_row{core::TextTable::Num(sigma, 1)};
    for (int d = 0; d < 3; ++d) {
      const auto spec = uncertain::ErrorSpec::Constant(kKinds[d], sigma);
      std::vector<core::Matcher*> matchers{&proud};
      auto pooled = RunPooled(datasets, spec, matchers, config);
      if (!pooled.ok()) {
        std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
        return 1;
      }
      const auto& r = pooled.ValueOrDie().front();
      p_row.push_back(
          core::TextTable::NumWithCi(r.precision.mean, r.precision.half_width));
      r_row.push_back(
          core::TextTable::NumWithCi(r.recall.mean, r.recall.half_width));
      csv.AddKeyedRow(kDistNames[d],
                      {sigma, r.precision.mean, r.recall.mean, r.f1.mean});
    }
    precision_table.AddRow(std::move(p_row));
    recall_table.AddRow(std::move(r_row));
  }

  std::printf("Figure 6(a) — PROUD precision vs sigma\n%s\n",
              precision_table.ToString().c_str());
  std::printf("Figure 6(b) — PROUD recall vs sigma\n%s\n",
              recall_table.ToString().c_str());
  EmitCsv(config, "fig06_proud_pr.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
