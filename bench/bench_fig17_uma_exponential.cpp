/// \file bench_fig17_uma_exponential.cpp
/// \brief Figure 17 — F1 per dataset for Euclidean, DUST, UMA and UEMA
/// under mixed **exponential** error (20% σ = 1.0, 80% σ = 0.4).
///
/// Paper expectation: "Euclidean is always the worst performer, with a drop
/// of 9% in its performance for the mixed exponential error distribution,
/// which represents the hardest case. DUST ... manages to maintain the same
/// level of performance"; UEMA stays on top.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace uts;
  bench::BenchConfig config = bench::ParseArgs(
      argc, argv, "bench_fig17_uma_exponential",
      "Figure 17: per-dataset F1, UMA/UEMA vs DUST/Euclidean, exp error");

  const auto spec = uncertain::ErrorSpec::MixedSigma(
      prob::ErrorKind::kExponential, 0.2, 1.0, 0.4);
  bench::MatcherBundle bundle = bench::MakeSectionFiveBundle();
  return bench::RunPerDatasetFigure(
      "Figure 17", "Euclidean/DUST/UMA/UEMA, mixed exponential error", spec,
      {bundle.euclidean.get(), bundle.dust.get(), bundle.uma.get(),
       bundle.uema.get()},
      config, "fig17_uma_exponential.csv");
}
