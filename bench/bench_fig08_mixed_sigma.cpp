/// \file bench_fig08_mixed_sigma.cpp
/// \brief Figure 8 — F1 per dataset under mixed normal error: 20% of the
/// points have σ = 1.0, the remaining 80% have σ = 0.4. PROUD cannot model
/// per-point σ and "was using a standard deviation setting of 0.7".
///
/// Paper expectation: "DUST is taking into account these variations of the
/// error, and achieves a slightly improved accuracy (3% more than PROUD and
/// Euclidean)."

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace uts;
  bench::BenchConfig config = bench::ParseArgs(
      argc, argv, "bench_fig08_mixed_sigma",
      "Figure 8: per-dataset F1, mixed-sigma normal error (20%@1.0/80%@0.4)");
  config.proud_sigma = 0.7;  // the paper's explicit PROUD setting

  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);
  core::EuclideanMatcher euclid;
  core::DustMatcher dust;
  core::ProudMatcher proud(0.5);
  return bench::RunPerDatasetFigure(
      "Figure 8", "Euclidean vs DUST vs PROUD, mixed-sigma normal error",
      spec, {&euclid, &dust, &proud}, config, "fig08_mixed_sigma.csv");
}
