/// \file bench_fig05_accuracy.cpp
/// \brief Figure 5 — F1 of PROUD, DUST and Euclidean averaged over all 17
/// datasets, varying the error standard deviation, for normal (a), uniform
/// (b) and exponential (c) error distributions.
///
/// Paper expectation: "there is virtually no difference among the different
/// techniques" across σ in [0.2, 2.0]; under uniform error, DUST dips by
/// ~10% at σ = 0.2 (the φ = 0 lookup-table pathology of Section 4.2.1).

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig05_accuracy",
      "Figure 5: F1 vs error stddev over all datasets (PROUD/DUST/Euclidean)");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Figure 5", "all datasets, constant-sigma error, F1 vs sigma",
              config);

  const char* kDistNames[] = {"normal", "uniform", "exponential"};
  const prob::ErrorKind kKinds[] = {prob::ErrorKind::kNormal,
                                    prob::ErrorKind::kUniform,
                                    prob::ErrorKind::kExponential};
  io::CsvWriter csv(
      {"error_distribution", "sigma", "PROUD", "DUST", "Euclidean"});

  // One persistent bundle: the DUST table cache carries across sigmas and
  // datasets exactly like the original implementation's precomputed tables.
  MatcherBundle bundle = MakeCoreTrio();

  for (int d = 0; d < 3; ++d) {
    core::TextTable table({"sigma", "PROUD", "DUST", "Euclidean"});
    for (double sigma : SigmaGrid()) {
      const auto spec = uncertain::ErrorSpec::Constant(kKinds[d], sigma);
      BenchConfig point = config;
      std::vector<core::Matcher*> matchers{bundle.proud.get(),
                                           bundle.dust.get(),
                                           bundle.euclidean.get()};
      auto pooled = RunPooled(datasets, spec, matchers, point);
      if (!pooled.ok()) {
        std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
        return 1;
      }
      const auto& rs = pooled.ValueOrDie();
      table.AddRow({core::TextTable::Num(sigma, 1),
                    core::TextTable::NumWithCi(rs[0].f1.mean, rs[0].f1.half_width),
                    core::TextTable::NumWithCi(rs[1].f1.mean, rs[1].f1.half_width),
                    core::TextTable::NumWithCi(rs[2].f1.mean, rs[2].f1.half_width)});
      csv.AddKeyedRow(kDistNames[d],
                      {sigma, rs[0].f1.mean, rs[1].f1.mean, rs[2].f1.mean});
    }
    std::printf("Figure 5(%c) — %s error distribution, F1 vs sigma\n", 'a' + d,
                kDistNames[d]);
    std::printf("%s\n", table.ToString().c_str());
  }

  EmitCsv(config, "fig05_accuracy.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
