#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>

#include "prob/special.hpp"
#include "query/engine_context.hpp"

namespace uts::bench {

core::RunOptions BenchConfig::MakeRunOptions() const {
  core::RunOptions options;
  options.ground_truth_k = ground_truth_k;
  options.max_queries = paper_scale ? 0 : max_queries;
  options.seed = seed;
  options.threads = threads;
  options.force_scalar = force_scalar;
  options.proud_sigma = proud_sigma;
  options.dtw_ground_truth = dtw_ground_truth;
  options.dtw_ground_truth_band = dtw_ground_truth_band;
  return options;
}

namespace {

/// The supplied run-wide engine context, or a local one in `local` sized
/// to `threads` when the caller did not pass any.
query::EngineContext* EnsureEngines(
    std::optional<query::EngineContext>& local, std::size_t threads,
    bool force_scalar, query::EngineContext* supplied) {
  if (supplied != nullptr) return supplied;
  query::EngineContextOptions engine_options;
  engine_options.threads = threads;
  if (force_scalar) engine_options.simd = distance::SimdMode::kForceScalar;
  local.emplace(engine_options);
  return &*local;
}

std::vector<std::string> SplitCommaList(const std::string& arg) {
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

[[noreturn]] void PrintUsageAndExit(const std::string& bench_name,
                                    const std::string& description) {
  std::printf(
      "%s — %s\n\n"
      "Usage: %s [options]\n"
      "  --quick          scaled-down sizes, runs in seconds (default)\n"
      "  --paper          UCR-scale sizes (all series, full length/queries)\n"
      "  --series N       cap series per dataset\n"
      "  --length N       cap series length\n"
      "  --queries N      cap queries per dataset\n"
      "  --k N            ground-truth set size (default 10)\n"
      "  --threads N      query-engine worker threads (default 1, 0 = auto);\n"
      "                   results are bit-identical at every setting\n"
      "  --force-scalar   pin the scalar reference kernels (skip the\n"
      "                   runtime-dispatched SIMD level)\n"
      "  --seed S         base RNG seed (default 42)\n"
      "  --out DIR        directory for CSV output (default .)\n"
      "  --datasets a,b   restrict to named datasets\n"
      "  --no-tau-sweep   skip optimal-tau selection\n"
      "  --help           this message\n",
      bench_name.c_str(), description.c_str(), bench_name.c_str());
  std::exit(0);
}

}  // namespace

BenchConfig ParseArgs(int argc, char** argv, const std::string& bench_name,
                      const std::string& description) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      config.paper_scale = false;
    } else if (arg == "--paper") {
      config.paper_scale = true;
    } else if (arg == "--series") {
      config.max_series = std::strtoull(next_value("--series").c_str(),
                                        nullptr, 10);
    } else if (arg == "--length") {
      config.max_length = std::strtoull(next_value("--length").c_str(),
                                        nullptr, 10);
    } else if (arg == "--queries") {
      config.max_queries = std::strtoull(next_value("--queries").c_str(),
                                         nullptr, 10);
    } else if (arg == "--k") {
      config.ground_truth_k = std::strtoull(next_value("--k").c_str(),
                                            nullptr, 10);
    } else if (arg == "--threads") {
      config.threads = std::strtoull(next_value("--threads").c_str(),
                                     nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next_value("--seed").c_str(), nullptr, 10);
    } else if (arg == "--out") {
      config.out_dir = next_value("--out");
    } else if (arg == "--datasets") {
      config.datasets = SplitCommaList(next_value("--datasets"));
    } else if (arg == "--no-tau-sweep") {
      config.sweep_tau = false;
    } else if (arg == "--force-scalar") {
      config.force_scalar = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsageAndExit(bench_name, description);
    } else if (arg == "--benchmark_format" || arg.rfind("--benchmark", 0) == 0) {
      // Ignore google-benchmark style flags so `for b in bench/*; do $b;
      // done` loops can pass uniform arguments.
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

std::vector<ts::Dataset> LoadDatasets(const BenchConfig& config) {
  std::vector<ts::Dataset> datasets;
  for (const auto& spec : datagen::UcrLikeSpecs()) {
    if (!config.datasets.empty()) {
      bool wanted = false;
      for (const auto& name : config.datasets) wanted |= (name == spec.name);
      if (!wanted) continue;
    }
    const std::size_t max_series =
        config.paper_scale ? 0 : config.max_series;
    const std::size_t max_length =
        config.paper_scale ? 0 : config.max_length;
    datasets.push_back(
        datagen::GenerateScaled(spec, config.seed, max_series, max_length)
            .ZNormalizedCopy());
  }
  return datasets;
}

std::vector<double> SigmaGrid() {
  return {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
}

Result<double> OptimizeTau(const std::vector<ts::Dataset>& datasets,
                           const uncertain::ErrorSpec& spec,
                           core::Matcher& matcher,
                           const core::RunOptions& options,
                           std::size_t tune_datasets) {
  if (!matcher.has_tau()) {
    return Status::InvalidArgument("matcher has no tau");
  }
  if (datasets.empty()) return Status::InvalidArgument("no datasets");

  // The paper's "optimal probabilistic threshold, determined after repeated
  // experiments" maximizes the reported metric itself, so τ is tuned on the
  // same query set the evaluation uses.
  core::RunOptions tune_options = options;

  const std::size_t use = std::min(tune_datasets, datasets.size());
  core::Matcher* matchers[] = {&matcher};

  auto pooled_f1 = [&](double tau) -> Result<double> {
    matcher.set_tau(tau);
    double f1_sum = 0.0;
    for (std::size_t d = 0; d < use; ++d) {
      auto run = core::RunSimilarityMatching(datasets[d], spec, matchers,
                                             tune_options);
      if (!run.ok()) return run.status();
      f1_sum += run.ValueOrDie().front().f1.mean;
    }
    return f1_sum;
  };

  // Stage 1: coarse grid.
  std::vector<double> grid = core::DefaultTauGrid();
  double best_tau = matcher.tau();
  double best_f1 = -1.0;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    auto f1 = pooled_f1(grid[i]);
    if (!f1.ok()) return f1.status();
    if (f1.ValueOrDie() > best_f1) {
      best_f1 = f1.ValueOrDie();
      best_tau = grid[i];
      best_index = i;
    }
  }

  // Stage 2: refine between the coarse optimum's neighbors, sampling
  // linearly in ε_limit = Φ⁻¹(τ) space (the decision statistic's scale).
  const double lo_tau = grid[best_index == 0 ? 0 : best_index - 1];
  const double hi_tau =
      grid[std::min(best_index + 1, grid.size() - 1)];
  const double lo_z = prob::NormalQuantile(lo_tau);
  const double hi_z = prob::NormalQuantile(hi_tau);
  constexpr int kRefine = 8;
  for (int i = 1; i < kRefine; ++i) {
    const double z = lo_z + (hi_z - lo_z) * i / kRefine;
    const double tau = prob::NormalCdf(z);
    auto f1 = pooled_f1(tau);
    if (!f1.ok()) return f1.status();
    if (f1.ValueOrDie() > best_f1) {
      best_f1 = f1.ValueOrDie();
      best_tau = tau;
    }
  }
  matcher.set_tau(best_tau);
  return best_tau;
}

Result<std::vector<core::MatcherResult>> RunPooled(
    const std::vector<ts::Dataset>& datasets,
    const uncertain::ErrorSpec& spec, std::vector<core::Matcher*> matchers,
    const BenchConfig& config, query::EngineContext* engines) {
  core::RunOptions options = config.MakeRunOptions();

  // One engine context for the whole harness call (or the caller's,
  // spanning a whole figure): one thread pool across every dataset, τ grid
  // point and matcher; one SoA pack per distinct perturbed dataset (τ
  // sweeps rebind to bit-identical data and reuse it).
  std::optional<query::EngineContext> local_engines;
  options.engine_context = EnsureEngines(local_engines, options.threads,
                                         options.force_scalar,
                                         engines);

  std::vector<std::vector<core::MatcherResult>> parts;
  for (const auto& dataset : datasets) {
    if (config.sweep_tau) {
      // The paper runs "experiments for each dataset separately" with the
      // optimal probabilistic threshold; τ is therefore tuned per dataset.
      const std::vector<ts::Dataset> single{dataset};
      for (core::Matcher* m : matchers) {
        if (m->has_tau()) {
          auto tau = OptimizeTau(single, spec, *m, options, 1);
          if (!tau.ok()) return tau.status();
        }
      }
    }
    auto run = core::RunSimilarityMatching(dataset, spec, matchers, options);
    if (!run.ok()) return run.status();
    parts.push_back(std::move(run).ValueOrDie());
  }

  std::vector<core::MatcherResult> pooled;
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    std::vector<core::MatcherResult> per_matcher;
    for (const auto& p : parts) per_matcher.push_back(p[m]);
    pooled.push_back(
        core::CombineAcrossDatasets(matchers[m]->name(), per_matcher));
  }
  return pooled;
}

Result<std::vector<PerDatasetRow>> RunPerDataset(
    const std::vector<ts::Dataset>& datasets,
    const uncertain::ErrorSpec& spec, std::vector<core::Matcher*> matchers,
    const BenchConfig& config, query::EngineContext* engines) {
  core::RunOptions options = config.MakeRunOptions();

  // One shared engine context per harness call (see RunPooled).
  std::optional<query::EngineContext> local_engines;
  options.engine_context = EnsureEngines(local_engines, options.threads,
                                         options.force_scalar,
                                         engines);

  std::vector<PerDatasetRow> rows;
  for (const auto& dataset : datasets) {
    if (config.sweep_tau) {
      const std::vector<ts::Dataset> single{dataset};
      for (core::Matcher* m : matchers) {
        if (m->has_tau()) {
          auto tau = OptimizeTau(single, spec, *m, options, 1);
          if (!tau.ok()) return tau.status();
        }
      }
    }
    auto run = core::RunSimilarityMatching(dataset, spec, matchers, options);
    if (!run.ok()) return run.status();
    rows.push_back({dataset.name(), std::move(run).ValueOrDie()});
  }
  return rows;
}

void PrintBanner(const std::string& figure, const std::string& setting,
                 const BenchConfig& config) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("setting: %s\n", setting.c_str());
  std::printf("scale:   %s (series<=%zu length<=%zu queries<=%zu k=%zu threads=%zu seed=%llu)\n\n",
              config.paper_scale ? "paper" : "quick",
              config.paper_scale ? std::size_t(0) : config.max_series,
              config.paper_scale ? std::size_t(0) : config.max_length,
              config.paper_scale ? std::size_t(0) : config.max_queries,
              config.ground_truth_k, config.threads,
              static_cast<unsigned long long>(config.seed));
}

void EmitCsv(const BenchConfig& config, const std::string& filename,
             const io::CsvWriter& csv) {
  const std::string path = config.out_dir + "/" + filename;
  const Status st = csv.WriteFile(path);
  if (st.ok()) {
    std::printf("csv: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
  }
}

MatcherBundle MakeCoreTrio(double proud_tau) {
  MatcherBundle bundle;
  bundle.euclidean = std::make_unique<core::EuclideanMatcher>();
  bundle.proud = std::make_unique<core::ProudMatcher>(proud_tau);
  bundle.dust = std::make_unique<core::DustMatcher>();
  return bundle;
}

MatcherBundle MakeSectionFiveBundle() {
  MatcherBundle bundle;
  bundle.euclidean = std::make_unique<core::EuclideanMatcher>();
  bundle.dust = std::make_unique<core::DustMatcher>();
  bundle.uma = core::MakeUmaMatcher(2);
  bundle.uema = core::MakeUemaMatcher(2, 1.0);
  return bundle;
}

int RunPerDatasetFigure(const std::string& figure, const std::string& setting,
                        const uncertain::ErrorSpec& spec,
                        std::vector<core::Matcher*> matchers,
                        const BenchConfig& config,
                        const std::string& csv_name) {
  const auto datasets = LoadDatasets(config);
  PrintBanner(figure, setting + " [" + spec.Describe() + "]", config);

  auto rows = RunPerDataset(datasets, spec, matchers, config);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> header{"dataset"};
  std::vector<std::string> csv_header{"dataset"};
  for (core::Matcher* m : matchers) {
    header.push_back(m->name());
    csv_header.push_back(m->name());
  }
  core::TextTable table(header);
  io::CsvWriter csv(csv_header);

  std::vector<std::vector<core::MatcherResult>> per_matcher(matchers.size());
  for (const auto& row : rows.ValueOrDie()) {
    std::vector<std::string> cells{row.dataset};
    std::vector<double> values;
    for (std::size_t m = 0; m < matchers.size(); ++m) {
      const auto& r = row.results[m];
      cells.push_back(core::TextTable::NumWithCi(r.f1.mean, r.f1.half_width));
      values.push_back(r.f1.mean);
      per_matcher[m].push_back(r);
    }
    table.AddRow(std::move(cells));
    csv.AddKeyedRow(row.dataset, values);
  }

  // Cross-dataset averages, as in the paper's discussion of these figures.
  std::vector<std::string> avg_cells{"AVERAGE"};
  std::vector<double> avg_values;
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    const auto combined =
        core::CombineAcrossDatasets(matchers[m]->name(), per_matcher[m]);
    avg_cells.push_back(
        core::TextTable::NumWithCi(combined.f1.mean, combined.f1.half_width));
    avg_values.push_back(combined.f1.mean);
  }
  table.AddRow(std::move(avg_cells));
  csv.AddKeyedRow("AVERAGE", avg_values);

  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, csv_name, csv);
  return 0;
}

}  // namespace uts::bench
