/// \file bench_fig04_munich.cpp
/// \brief Figure 4 — F1 of MUNICH, PROUD, DUST and Euclidean on the
/// truncated Gun Point dataset, varying the error standard deviation, for
/// normal (a), uniform (b) and exponential (c) error distributions.
///
/// Paper setting (Section 4.2.1): "We compare MUNICH, PROUD, DUST and
/// Euclidean on the Gun Point dataset, truncating it to 60 time series of
/// length 6. For each timestamp, we have 5 samples as input for MUNICH.
/// Results are averaged on 5 random queries. For both MUNICH and PROUD we
/// are using the optimal probabilistic threshold τ ... Distance thresholds
/// are chosen such that in the ground truth set they return exactly 10 time
/// series."
///
/// Expected shape: everyone is accurate at σ = 0.2 (MUNICH best); MUNICH
/// collapses for σ > 0.6; exponential error is slightly kinder to MUNICH.

#include <cstdio>

#include "bench_common.hpp"
#include "query/engine_context.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig04_munich",
      "Figure 4: F1 vs error stddev on truncated GunPoint (with MUNICH)");

  // The figure's fixed workload: 60 series of length 6, regardless of the
  // quick/paper switch (this experiment is small by design).
  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  const ts::Dataset full =
      datagen::GenerateScaled(spec, config.seed, 60, 48).ZNormalizedCopy();
  auto truncated = full.Truncated(60, 6);
  if (!truncated.ok()) {
    std::fprintf(stderr, "%s\n", truncated.status().ToString().c_str());
    return 1;
  }
  const std::vector<ts::Dataset> datasets{truncated.ValueOrDie()};

  BenchConfig run_config = config;
  run_config.paper_scale = false;
  run_config.max_queries = 5;   // "averaged on 5 random queries"
  run_config.ground_truth_k = 10;

  PrintBanner("Figure 4", "truncated GunPoint-like, 60 series x length 6, "
              "5 samples/timestamp, 5 queries", run_config);

  const auto sigmas = SigmaGrid();
  const char* kDistNames[] = {"normal", "uniform", "exponential"};
  const prob::ErrorKind kKinds[] = {prob::ErrorKind::kNormal,
                                    prob::ErrorKind::kUniform,
                                    prob::ErrorKind::kExponential};

  io::CsvWriter csv({"error_distribution", "sigma", "MUNICH", "PROUD", "DUST",
                     "Euclidean"});

  measures::MunichOptions munich_options;
  munich_options.estimator = measures::MunichOptions::Estimator::kAuto;
  munich_options.tau = 0.5;
  core::MunichMatcher munich(munich_options);
  core::ProudMatcher proud(0.5);
  core::DustMatcher dust;
  core::EuclideanMatcher euclid;
  std::vector<core::Matcher*> matchers{&munich, &proud, &dust, &euclid};

  // One engine context for the whole figure: every error distribution, σ
  // grid point, τ tuning run and matcher shares one pool; within one (d, σ)
  // configuration the τ sweep rebinds to bit-identical data and reuses the
  // packed engines.
  query::EngineContextOptions engine_options;
  engine_options.threads = run_config.threads;
  query::EngineContext engines(engine_options);

  for (int d = 0; d < 3; ++d) {
    core::TextTable table({"sigma", "MUNICH", "PROUD", "DUST", "Euclidean"});
    for (double sigma : sigmas) {
      auto err = uncertain::ErrorSpec::Constant(kKinds[d], sigma);
      core::RunOptions options = run_config.MakeRunOptions();
      options.munich_samples_per_point = 5;  // "5 samples as input"
      options.proud_sigma = sigma;
      options.engine_context = &engines;

      if (run_config.sweep_tau) {
        for (core::Matcher* m : {static_cast<core::Matcher*>(&munich),
                                 static_cast<core::Matcher*>(&proud)}) {
          auto tau = OptimizeTau(datasets, err, *m, options, 1);
          if (!tau.ok()) {
            std::fprintf(stderr, "%s\n", tau.status().ToString().c_str());
            return 1;
          }
        }
      }

      auto run =
          core::RunSimilarityMatching(datasets[0], err, matchers, options);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
        return 1;
      }
      const auto& rs = run.ValueOrDie();
      table.AddRow({core::TextTable::Num(sigma, 1),
                    core::TextTable::NumWithCi(rs[0].f1.mean, rs[0].f1.half_width),
                    core::TextTable::NumWithCi(rs[1].f1.mean, rs[1].f1.half_width),
                    core::TextTable::NumWithCi(rs[2].f1.mean, rs[2].f1.half_width),
                    core::TextTable::NumWithCi(rs[3].f1.mean, rs[3].f1.half_width)});
      csv.AddKeyedRow(kDistNames[d], {sigma, rs[0].f1.mean, rs[1].f1.mean,
                                      rs[2].f1.mean, rs[3].f1.mean});
    }
    std::printf("Figure 4(%c) — %s error distribution, F1 vs sigma\n",
                'a' + d, kDistNames[d]);
    std::printf("%s\n", table.ToString().c_str());
  }

  EmitCsv(run_config, "fig04_munich.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
