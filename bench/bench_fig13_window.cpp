/// \file bench_fig13_window.cpp
/// \brief Figure 13 — F1 vs moving-average window size w (0..20) for UMA
/// and UEMA (λ = 0.1 and λ = 1), averaged over all datasets, under the
/// mixed normal error regime.
///
/// Paper expectation: "the accuracy for UMA increases by 13% as we increase
/// w from 0 to 2, and then starts falling again"; UEMA with λ = 1 is nearly
/// insensitive to w; at w = 0 every variant degenerates to Euclidean.

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig13_window",
      "Figure 13: F1 vs window size for UMA / UEMA(0.1) / UEMA(1)");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Figure 13", "window-size sweep, mixed normal error "
              "(20%@1.0 / 80%@0.4)", config);

  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);
  io::CsvWriter csv({"w", "UMA", "UEMA_lambda_0.1", "UEMA_lambda_1"});
  core::TextTable table({"w", "UMA", "UEMA(0.1)", "UEMA(1)"});

  for (std::size_t w = 0; w <= 20; ++w) {
    auto uma = core::MakeUmaMatcher(w);
    auto uema_01 = core::MakeUemaMatcher(w, 0.1);
    auto uema_1 = core::MakeUemaMatcher(w, 1.0);
    std::vector<core::Matcher*> matchers{uma.get(), uema_01.get(),
                                         uema_1.get()};
    auto pooled = RunPooled(datasets, spec, matchers, config);
    if (!pooled.ok()) {
      std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
      return 1;
    }
    const auto& rs = pooled.ValueOrDie();
    table.AddRow({std::to_string(w),
                  core::TextTable::NumWithCi(rs[0].f1.mean, rs[0].f1.half_width),
                  core::TextTable::NumWithCi(rs[1].f1.mean, rs[1].f1.half_width),
                  core::TextTable::NumWithCi(rs[2].f1.mean, rs[2].f1.half_width)});
    csv.AddNumericRow({static_cast<double>(w), rs[0].f1.mean, rs[1].f1.mean,
                       rs[2].f1.mean});
  }
  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, "fig13_window.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
