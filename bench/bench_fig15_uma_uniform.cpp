/// \file bench_fig15_uma_uniform.cpp
/// \brief Figure 15 — F1 per dataset for Euclidean, DUST, UMA and UEMA
/// under mixed **uniform** error (20% σ = 1.0, 80% σ = 0.4).
///
/// Paper expectation: "UMA and UEMA perform consistently better, with the
/// latter achieving the best performance among all techniques."
/// DUST reports through the tailed-uniform workaround here, as in the
/// paper's uniform experiments (Section 4.2.1).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace uts;
  bench::BenchConfig config = bench::ParseArgs(
      argc, argv, "bench_fig15_uma_uniform",
      "Figure 15: per-dataset F1, UMA/UEMA vs DUST/Euclidean, uniform error");

  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kUniform, 0.2, 1.0, 0.4)
          .WithTailedUniformReporting();
  bench::MatcherBundle bundle = bench::MakeSectionFiveBundle();
  return bench::RunPerDatasetFigure(
      "Figure 15", "Euclidean/DUST/UMA/UEMA, mixed uniform error", spec,
      {bundle.euclidean.get(), bundle.dust.get(), bundle.uma.get(),
       bundle.uema.get()},
      config, "fig15_uma_uniform.csv");
}
