/// \file bench_common.hpp
/// \brief Shared scaffolding for the figure-reproduction harnesses.
///
/// Every harness in bench/ regenerates one table or figure of the paper's
/// evaluation (see DESIGN.md §3 for the index). They share:
///
///  * a command line: `--quick` (default: scaled-down sizes, seconds per
///    figure) vs `--paper` (UCR-scale sizes, minutes to hours), plus
///    `--series N --length N --queries N --seed S --out DIR --datasets a,b`;
///  * dataset loading (synthetic UCR-like registry, z-normalized);
///  * the evaluation loop of Section 4.1.2 with per-configuration optimal-τ
///    selection for the probabilistic matchers;
///  * table printing and CSV emission.

#ifndef UTS_BENCH_BENCH_COMMON_HPP_
#define UTS_BENCH_BENCH_COMMON_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "core/report.hpp"
#include "datagen/registry.hpp"
#include "io/csv.hpp"
#include "ts/dataset.hpp"
#include "uncertain/error_spec.hpp"

namespace uts::query {
class EngineContext;
}  // namespace uts::query

namespace uts::bench {

/// \brief Scale and output configuration shared by all harnesses.
struct BenchConfig {
  bool paper_scale = false;        ///< --paper: UCR-scale sizes.
  std::size_t max_series = 48;     ///< Cap on series per dataset (quick).
  std::size_t max_length = 64;     ///< Cap on series length (quick).
  std::size_t max_queries = 12;    ///< Cap on queries per dataset (quick).
  std::size_t ground_truth_k = 10; ///< The paper's 10-NN ground truth.
  std::size_t threads = 1;         ///< --threads: engine workers (0 = auto).
  bool force_scalar = false;       ///< --force-scalar: pin scalar kernels.
  std::uint64_t seed = 42;
  std::string out_dir = ".";       ///< Where CSVs are written.
  std::vector<std::string> datasets;  ///< Empty = all 17.
  bool sweep_tau = true;           ///< Optimal-τ selection (MUNICH/PROUD).
  double proud_sigma = 0.0;        ///< σ told to PROUD (0 = spec default).
  bool dtw_ground_truth = false;   ///< Ground truth under exact DTW.
  std::size_t dtw_ground_truth_band =
      distance::DtwOptions::kNoBand;  ///< Band of the DTW ground truth.

  /// Runner options for one dataset under this config.
  core::RunOptions MakeRunOptions() const;
};

/// \brief Parse harness arguments; prints usage and exits on --help.
BenchConfig ParseArgs(int argc, char** argv, const std::string& bench_name,
                      const std::string& description);

/// \brief Generate the configured datasets, z-normalized, at the configured
/// scale. Order follows the paper's listing.
std::vector<ts::Dataset> LoadDatasets(const BenchConfig& config);

/// \brief σ grid of the accuracy/timing sweeps: 0.2, 0.4, ..., 2.0
/// ("varying standard deviation within interval [0.2, 2.0]").
std::vector<double> SigmaGrid();

/// \brief Pick the F1-optimal τ for `matcher` under (datasets, spec) — the
/// paper's per-configuration "optimal probabilistic threshold". To keep the
/// search affordable it pools a subsample (first `tune_datasets` datasets,
/// half the queries); the chosen τ is then applied to the full run.
Result<double> OptimizeTau(const std::vector<ts::Dataset>& datasets,
                           const uncertain::ErrorSpec& spec,
                           core::Matcher& matcher,
                           const core::RunOptions& options,
                           std::size_t tune_datasets = 2);

/// \brief Evaluate matchers over every dataset and pool per-query scores
/// ("we report the average results over the full time series for all
/// datasets"). When `sweep_tau` is set, probabilistic matchers are tuned
/// first via OptimizeTau.
///
/// `engines` is the run-wide shared engine context (one thread pool, one
/// SoA pack and one uncertain engine per evaluation). Null = create one
/// internally for this call; figure drivers looping over configurations
/// pass one so the whole figure shares a single pool.
Result<std::vector<core::MatcherResult>> RunPooled(
    const std::vector<ts::Dataset>& datasets, const uncertain::ErrorSpec& spec,
    std::vector<core::Matcher*> matchers, const BenchConfig& config,
    query::EngineContext* engines = nullptr);

/// \brief Per-dataset results (Figures 8-10, 15-17 are per-dataset bars).
struct PerDatasetRow {
  std::string dataset;
  std::vector<core::MatcherResult> results;  // one per matcher
};

/// \brief Evaluate matchers per dataset, with one shared τ tuned up front.
/// `engines` as in RunPooled.
Result<std::vector<PerDatasetRow>> RunPerDataset(
    const std::vector<ts::Dataset>& datasets, const uncertain::ErrorSpec& spec,
    std::vector<core::Matcher*> matchers, const BenchConfig& config,
    query::EngineContext* engines = nullptr);

/// \brief Print the standard harness banner.
void PrintBanner(const std::string& figure, const std::string& setting,
                 const BenchConfig& config);

/// \brief Write a CSV into config.out_dir, logging the path. Failures are
/// reported to stderr but do not abort the harness.
void EmitCsv(const BenchConfig& config, const std::string& filename,
             const io::CsvWriter& csv);

/// \brief Standard matcher bundles used across figures.
struct MatcherBundle {
  std::unique_ptr<core::EuclideanMatcher> euclidean;
  std::unique_ptr<core::ProudMatcher> proud;
  std::unique_ptr<core::DustMatcher> dust;
  std::unique_ptr<core::FilteredMatcher> uma;
  std::unique_ptr<core::FilteredMatcher> uema;
  std::unique_ptr<core::MunichMatcher> munich;
};

/// \brief Make the (Euclidean, PROUD, DUST) trio of Figures 5-12.
MatcherBundle MakeCoreTrio(double proud_tau = 0.5);

/// \brief Make the (Euclidean, DUST, UMA, UEMA) quartet of Figures 15-17
/// with the paper's defaults (w = 2, λ = 1).
MatcherBundle MakeSectionFiveBundle();

/// \brief Shared driver for the per-dataset F1 bar figures (8, 9, 10 and
/// 15-17): runs `matchers` on every dataset under `spec`, prints one row
/// per dataset with one F1 column per matcher, and writes `csv_name`.
int RunPerDatasetFigure(const std::string& figure,
                        const std::string& setting,
                        const uncertain::ErrorSpec& spec,
                        std::vector<core::Matcher*> matchers,
                        const BenchConfig& config,
                        const std::string& csv_name);

}  // namespace uts::bench

#endif  // UTS_BENCH_BENCH_COMMON_HPP_
