/// \file bench_table_chisquare.cpp
/// \brief Section 4.1.1 uniformity check — "According to the Chi-square
/// test, the hypothesis that the datasets follow the uniform distribution
/// was rejected (for all datasets) with confidence level α = 0.01."
///
/// DUST assumes uniformly distributed values; this table shows the
/// assumption fails on every dataset (synthetic stand-ins included), yet
/// DUST is evaluated under it throughout, exactly as in the paper.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "prob/stats.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_table_chisquare",
      "Section 4.1.1: chi-square uniformity test on all dataset values");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Section 4.1.1 table", "chi-square test of value uniformity, "
              "alpha = 0.01", config);

  core::TextTable table({"dataset", "n_values", "chi2", "dof", "p_value",
                         "reject_uniform@0.01"});
  io::CsvWriter csv({"dataset", "n_values", "chi2", "dof", "p_value",
                     "reject"});
  std::size_t rejected = 0;
  for (const auto& dataset : datasets) {
    std::vector<double> pooled;
    for (const auto& series : dataset) {
      pooled.insert(pooled.end(), series.begin(), series.end());
    }
    auto test = prob::ChiSquareUniformityTest(pooled);
    if (!test.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.name().c_str(),
                   test.status().ToString().c_str());
      return 1;
    }
    const auto& r = test.ValueOrDie();
    const bool reject = r.RejectAt(0.01);
    rejected += reject ? 1 : 0;
    table.AddRow({dataset.name(), std::to_string(r.samples),
                  core::TextTable::Num(r.statistic, 1),
                  core::TextTable::Num(r.dof, 0),
                  core::TextTable::Num(r.p_value, 6),
                  reject ? "yes" : "no"});
    csv.AddKeyedRow(dataset.name(),
                    {static_cast<double>(r.samples), r.statistic, r.dof,
                     r.p_value, reject ? 1.0 : 0.0});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("uniformity rejected for %zu of %zu datasets "
              "(paper: all 17 of 17)\n\n", rejected, datasets.size());
  EmitCsv(config, "table_chisquare.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
