/// \file bench_supp_dtw.cpp
/// \brief Supplementary — the DTW variants of Section 3.2.
///
/// The paper states (without a figure) that "MUNICH and DUST can be
/// employed to compute the Dynamic Time Warping distance, which is a more
/// flexible distance measure". This harness exercises that claim: F1 of
/// lockstep vs DTW-aligned matching under noise, on datasets with strong
/// intra-class warping (the shape-grammar generators warp every instance).
///
/// Matchers: Euclidean, DTW (banded, on observations), DUST, DUST-DTW, and
/// MUNICH-DTW (Monte-Carlo over materializations) on a truncated workload.

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_supp_dtw",
      "Supplementary: DTW variants (Section 3.2) under constant normal error");
  if (config.datasets.empty()) {
    // High-warp datasets where alignment matters.
    config.datasets = {"GunPoint", "Lighting2", "FaceFour", "Trace"};
  }
  const auto datasets = LoadDatasets(config);
  PrintBanner("Supplementary DTW", "lockstep vs warped matching, normal "
              "error sigma=0.4", config);

  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.4);

  distance::DtwOptions band;
  band.band_radius = config.max_length / 8;

  // Lockstep matchers score against the exact-Euclidean ground truth; the
  // DTW-flavored matchers against the exact-DTW ground truth — each family
  // is asked to recover its own notion of the true neighbors under noise.
  core::EuclideanMatcher euclid;
  core::DustMatcher dust;
  std::vector<core::Matcher*> lockstep{&euclid, &dust};
  auto lockstep_rows = RunPerDataset(datasets, spec, lockstep, config);

  BenchConfig dtw_config = config;
  dtw_config.dtw_ground_truth = true;
  dtw_config.dtw_ground_truth_band = band.band_radius;
  core::DtwMatcher dtw(band);
  core::DustDtwMatcher dust_dtw({}, band);
  std::vector<core::Matcher*> warped{&dtw, &dust_dtw};
  auto warped_rows = RunPerDataset(datasets, spec, warped, dtw_config);

  if (!lockstep_rows.ok() || !warped_rows.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!lockstep_rows.ok() ? lockstep_rows.status()
                                      : warped_rows.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  core::TextTable table({"dataset", "Euclidean vs L2-truth",
                         "DUST vs L2-truth", "DTW vs DTW-truth",
                         "DUST-DTW vs DTW-truth"});
  io::CsvWriter csv({"dataset", "Euclidean", "DUST", "DTW", "DUST_DTW"});
  for (std::size_t i = 0; i < lockstep_rows.ValueOrDie().size(); ++i) {
    const auto& lrow = lockstep_rows.ValueOrDie()[i];
    const auto& wrow = warped_rows.ValueOrDie()[i];
    std::vector<std::string> cells{lrow.dataset};
    std::vector<double> values;
    for (const auto& r : {lrow.results[0], lrow.results[1], wrow.results[0],
                          wrow.results[1]}) {
      cells.push_back(core::TextTable::NumWithCi(r.f1.mean, r.f1.half_width));
      values.push_back(r.f1.mean);
    }
    table.AddRow(std::move(cells));
    csv.AddKeyedRow(lrow.dataset, values);
  }
  std::printf("%s\n", table.ToString().c_str());

  // MUNICH-DTW reference on a small workload (it is Monte Carlo + DTW per
  // sampled materialization: feasible only on short series, like the
  // paper's MUNICH experiments).
  {
    auto spec_gp = datagen::SpecByName("GunPoint").ValueOrDie();
    const ts::Dataset full = datagen::GenerateScaled(spec_gp, config.seed, 30,
                                                     48)
                                 .ZNormalizedCopy();
    const ts::Dataset d = full.Truncated(24, 12).ValueOrDie();
    measures::MunichOptions mopts;
    mopts.mc_samples = 400;
    mopts.tau = 0.5;
    core::MunichDtwMatcher munich_dtw(mopts);
    core::Matcher* ms[] = {&munich_dtw};
    core::RunOptions options = config.MakeRunOptions();
    options.max_queries = 6;
    options.ground_truth_k = 5;
    options.munich_samples_per_point = 4;
    auto run = core::RunSimilarityMatching(
        d, uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.4), ms,
        options);
    if (run.ok()) {
      std::printf("MUNICH-DTW reference (24 series x length 12, 4 samples/pt,"
                  " MC 400): F1 %.3f, %.1f ms/query\n\n",
                  run.ValueOrDie()[0].f1.mean,
                  run.ValueOrDie()[0].avg_query_millis);
    }
  }

  EmitCsv(config, "supp_dtw.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
