/// \file bench_ablation.cpp
/// \brief Ablation studies for the design choices DESIGN.md calls out:
///
///  1. DUST lookup-table resolution — build cost vs accuracy against the
///     Gaussian closed form;
///  2. MUNICH estimator — exact meet-in-the-middle vs Monte Carlo sample
///     counts vs bounds-only decisions (probability RMSE + time);
///  3. PROUD wavelet synopsis — pruning rate and decision agreement vs the
///     exact matcher across synopsis sizes;
///  4. UMA edge handling — renormalized (default) vs the literal Eq. 15/17
///     denominator.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/timer.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "uncertain/perturb.hpp"
#include "wavelet/proud_synopsis.hpp"

namespace uts::bench {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = rng.Gaussian();
  return xs;
}

void DustResolutionAblation(const BenchConfig& config) {
  std::printf("Ablation 1 — DUST table resolution (normal sigma=0.5, "
              "numeric path vs closed form)\n");
  core::TextTable table({"cells", "build_ms", "max_abs_err", "mean_abs_err"});
  io::CsvWriter csv({"cells", "build_ms", "max_abs_err", "mean_abs_err"});
  auto err = prob::MakeNormalError(0.5);
  measures::DustOptions closed;
  const auto oracle = measures::DustTable::Build(*err, *err, closed);
  for (std::size_t cells : {128u, 512u, 2048u, 8192u}) {
    measures::DustOptions options;
    options.use_closed_form_normal = false;
    options.table_size = cells;
    core::Stopwatch watch;
    auto built = measures::DustTable::Build(*err, *err, options);
    const double build_ms = watch.ElapsedMillis();
    if (!built.ok()) continue;
    double max_err = 0.0, sum_err = 0.0;
    int count = 0;
    for (double d = 0.0; d <= 8.0; d += 0.01, ++count) {
      const double e = std::fabs(built.ValueOrDie().Dust(d) -
                                 oracle.ValueOrDie().Dust(d));
      max_err = std::max(max_err, e);
      sum_err += e;
    }
    table.AddRow({std::to_string(cells), core::TextTable::Num(build_ms, 2),
                  core::TextTable::Num(max_err, 6),
                  core::TextTable::Num(sum_err / count, 6)});
    csv.AddNumericRow({static_cast<double>(cells), build_ms, max_err,
                       sum_err / count});
  }
  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, "ablation_dust_resolution.csv", csv);
}

void MunichEstimatorAblation(const BenchConfig& config) {
  std::printf("Ablation 2 — MUNICH estimators (length 6, 5 samples/pt, "
              "30 pairs, eps chosen near the decision boundary)\n");
  core::TextTable table({"estimator", "prob_rmse_vs_exact", "ms_per_pair"});
  io::CsvWriter csv({"estimator", "prob_rmse", "ms_per_pair"});

  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.6);
  constexpr int kPairs = 30;
  std::vector<uncertain::MultiSampleSeries> xs, ys;
  std::vector<double> epsilons, exact_probs;
  for (int p = 0; p < kPairs; ++p) {
    const ts::TimeSeries base(RandomSeries(6, 100 + p));
    xs.push_back(uncertain::PerturbMultiSample(base, spec, 5, 200 + p));
    ys.push_back(uncertain::PerturbMultiSample(base, spec, 5, 300 + p));
    const auto bounds = measures::Munich::EuclideanBounds(xs[p], ys[p]);
    epsilons.push_back(0.5 * (bounds.lower + bounds.upper));
    exact_probs.push_back(measures::Munich::ExactMatchProbability(
                              xs[p], ys[p], epsilons[p])
                              .ValueOrDie());
  }

  // Exact baseline timing.
  {
    core::Stopwatch watch;
    for (int p = 0; p < kPairs; ++p) {
      (void)measures::Munich::ExactMatchProbability(xs[p], ys[p], epsilons[p]);
    }
    const double ms = watch.ElapsedMillis() / kPairs;
    table.AddRow({"exact (meet-in-the-middle)", "0.000000",
                  core::TextTable::Num(ms, 3)});
    csv.AddKeyedRow("exact", {0.0, ms});
  }

  for (std::size_t samples : {100u, 1000u, 10000u, 100000u}) {
    core::Stopwatch watch;
    double se = 0.0;
    for (int p = 0; p < kPairs; ++p) {
      const double est = measures::Munich::MonteCarloMatchProbability(
          xs[p], ys[p], epsilons[p], samples, 77 + p);
      se += (est - exact_probs[p]) * (est - exact_probs[p]);
    }
    const double ms = watch.ElapsedMillis() / kPairs;
    const double rmse = std::sqrt(se / kPairs);
    char name[48];
    std::snprintf(name, sizeof(name), "monte-carlo %zu", samples);
    table.AddRow({name, core::TextTable::Num(rmse, 6),
                  core::TextTable::Num(ms, 3)});
    csv.AddKeyedRow(name, {rmse, ms});
  }

  // Bounds-only decision: snap to {0, 0.5, 1} by certain-reject / unknown /
  // certain-accept.
  {
    core::Stopwatch watch;
    double se = 0.0;
    for (int p = 0; p < kPairs; ++p) {
      const auto bounds = measures::Munich::EuclideanBounds(xs[p], ys[p]);
      double est = 0.5;
      if (bounds.upper <= epsilons[p]) est = 1.0;
      if (bounds.lower > epsilons[p]) est = 0.0;
      se += (est - exact_probs[p]) * (est - exact_probs[p]);
    }
    const double ms = watch.ElapsedMillis() / kPairs;
    table.AddRow({"bounds-only", core::TextTable::Num(std::sqrt(se / kPairs), 6),
                  core::TextTable::Num(ms, 3)});
    csv.AddKeyedRow("bounds-only", {std::sqrt(se / kPairs), ms});
  }
  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, "ablation_munich_estimators.csv", csv);
}

void ProudSynopsisAblation(const BenchConfig& config) {
  std::printf("Ablation 3 — PROUD wavelet synopsis (tau=0.9, sigma=0.5, "
              "length 128, 400 decisions)\n");
  core::TextTable table(
      {"synopsis_size", "pruned_frac", "agreement_with_exact", "ms_per_1k"});
  io::CsvWriter csv({"synopsis_size", "pruned_frac", "agreement", "ms_per_1k"});

  measures::ProudOptions popts{.tau = 0.9, .sigma = 0.5};
  const measures::Proud exact(popts);
  constexpr int kDecisions = 400;

  for (std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    wavelet::ProudSynopsisOptions sopts;
    sopts.proud = popts;
    sopts.synopsis_size = k;
    const wavelet::ProudSynopsisMatcher matcher(sopts);
    wavelet::ProudSynopsisStats stats;
    int agree = 0;
    core::Stopwatch watch;
    for (int t = 0; t < kDecisions; ++t) {
      const auto x = RandomSeries(128, 1000 + t);
      auto y = RandomSeries(128, 5000 + t);
      // Mix of near and far candidates around the decision boundary.
      const double shift = (t % 4) * 0.25;
      for (double& v : y) v = v * 0.3 + shift;
      const auto sx = matcher.Synopsize(x);
      const auto sy = matcher.Synopsize(y);
      const double eps = 10.0 + (t % 8);
      const bool fast = matcher.Matches(sx, sy, x, y, eps, &stats).ValueOrDie();
      if (fast == exact.Matches(x, y, eps)) ++agree;
    }
    const double ms = watch.ElapsedMillis();
    table.AddRow({std::to_string(k),
                  core::TextTable::Num(double(stats.pruned) / kDecisions, 3),
                  core::TextTable::Num(double(agree) / kDecisions, 3),
                  core::TextTable::Num(ms * 1000.0 / kDecisions, 3)});
    csv.AddNumericRow({static_cast<double>(k),
                       double(stats.pruned) / kDecisions,
                       double(agree) / kDecisions, ms * 1000.0 / kDecisions});
  }
  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, "ablation_proud_synopsis.csv", csv);
}

void UmaEdgeAblation(BenchConfig config) {
  std::printf("Ablation 4 — UMA edge handling: renormalized window vs the "
              "literal Eq. 15/17 denominator (mixed normal error)\n");
  config.sweep_tau = false;
  const auto datasets = LoadDatasets(config);
  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);

  ts::FilterOptions renorm;
  renorm.half_window = 2;
  ts::FilterOptions strict = renorm;
  strict.strict_paper_denominator = true;
  core::FilteredMatcher renorm_matcher(core::FilterKind::kUma, renorm);
  core::FilteredMatcher strict_matcher(core::FilterKind::kUma, strict);

  auto pooled = RunPooled(datasets, spec,
                          {&renorm_matcher, &strict_matcher}, config);
  if (!pooled.ok()) {
    std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
    return;
  }
  const auto& rs = pooled.ValueOrDie();
  core::TextTable table({"edge handling", "F1"});
  table.AddRow({"renormalized (default)",
                core::TextTable::NumWithCi(rs[0].f1.mean, rs[0].f1.half_width)});
  table.AddRow({"literal 2w+1 (Eq. 15/17)",
                core::TextTable::NumWithCi(rs[1].f1.mean, rs[1].f1.half_width)});
  std::printf("%s\n", table.ToString().c_str());

  io::CsvWriter csv({"edge_handling", "f1"});
  csv.AddKeyedRow("renormalized", {rs[0].f1.mean});
  csv.AddKeyedRow("literal", {rs[1].f1.mean});
  EmitCsv(config, "ablation_uma_edges.csv", csv);
}

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_ablation",
      "Ablations: DUST table resolution, MUNICH estimators, PROUD synopsis, "
      "UMA edge handling");
  PrintBanner("Ablations", "design-choice studies (DESIGN.md section 3)",
              config);
  DustResolutionAblation(config);
  MunichEstimatorAblation(config);
  ProudSynopsisAblation(config);
  UmaEdgeAblation(config);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
