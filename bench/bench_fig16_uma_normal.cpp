/// \file bench_fig16_uma_normal.cpp
/// \brief Figure 16 — F1 per dataset for Euclidean, DUST, UMA and UEMA
/// under mixed **normal** error (20% σ = 1.0, 80% σ = 0.4).
///
/// Paper expectation: "The accuracy of DUST and Euclidean is almost the
/// same, while UMA and UEMA perform consistently better"; UEMA ≈ +4% over
/// UMA, UMA/UEMA 4-15% over DUST on average.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace uts;
  bench::BenchConfig config = bench::ParseArgs(
      argc, argv, "bench_fig16_uma_normal",
      "Figure 16: per-dataset F1, UMA/UEMA vs DUST/Euclidean, normal error");

  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);
  bench::MatcherBundle bundle = bench::MakeSectionFiveBundle();
  return bench::RunPerDatasetFigure(
      "Figure 16", "Euclidean/DUST/UMA/UEMA, mixed normal error", spec,
      {bundle.euclidean.get(), bundle.dust.get(), bundle.uma.get(),
       bundle.uema.get()},
      config, "fig16_uma_normal.csv");
}
