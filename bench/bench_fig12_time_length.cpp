/// \file bench_fig12_time_length.cpp
/// \brief Figure 12 — average CPU time per query for PROUD, DUST and
/// Euclidean vs time-series length (50..1000 points), normal error.
///
/// "Time series of different lengths have been obtained resampling the raw
/// sequences" (Section 4.3). Expectation: "time grows linearly to the time
/// series length" for all three, preserving the Euclidean < DUST < PROUD
/// ordering.

#include <cstdio>

#include "bench_common.hpp"
#include "query/engine_context.hpp"
#include "ts/normalize.hpp"
#include "ts/resample.hpp"

namespace uts::bench {
namespace {

ts::Dataset ResampleDataset(const ts::Dataset& dataset, std::size_t length) {
  ts::Dataset out(dataset.name());
  for (const auto& series : dataset) {
    auto resampled = ts::LinearResample(series, length);
    // Input series always have >= 2 points; resampling cannot fail here.
    out.Add(ts::ZNormalized(std::move(resampled).ValueOrDie()));
  }
  return out;
}

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig12_time_length",
      "Figure 12: CPU time per query vs series length (resampled)");
  config.sweep_tau = false;
  // Length is the sweep variable; the cap must not interfere.
  config.max_length = 0;
  const auto base = LoadDatasets(config);
  PrintBanner("Figure 12", "per-query time vs length, normal error sigma=1.0",
              config);

  const std::vector<std::size_t> lengths{50, 100, 200, 400, 600, 800, 1000};
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 1.0);

  MatcherBundle bundle = MakeCoreTrio();
  io::CsvWriter csv({"length", "PROUD_ms", "DUST_ms", "Euclidean_ms"});
  core::TextTable table(
      {"length", "PROUD (ms)", "DUST (ms)", "Euclidean (ms)"});

  // One engine context (one thread pool) for the whole length sweep.
  query::EngineContextOptions engine_options;
  engine_options.threads = config.threads;
  query::EngineContext engines(engine_options);

  for (std::size_t length : lengths) {
    std::vector<ts::Dataset> resampled;
    resampled.reserve(base.size());
    for (const auto& d : base) resampled.push_back(ResampleDataset(d, length));

    std::vector<core::Matcher*> matchers{
        bundle.proud.get(), bundle.dust.get(), bundle.euclidean.get()};
    auto pooled = RunPooled(resampled, spec, matchers, config, &engines);
    if (!pooled.ok()) {
      std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
      return 1;
    }
    const auto& rs = pooled.ValueOrDie();
    table.AddRow({std::to_string(length),
                  core::TextTable::Num(rs[0].avg_query_millis, 4),
                  core::TextTable::Num(rs[1].avg_query_millis, 4),
                  core::TextTable::Num(rs[2].avg_query_millis, 4)});
    csv.AddNumericRow({static_cast<double>(length), rs[0].avg_query_millis,
                       rs[1].avg_query_millis, rs[2].avg_query_millis});
  }
  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, "fig12_time_length.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
