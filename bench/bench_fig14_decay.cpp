/// \file bench_fig14_decay.cpp
/// \brief Figure 14 — F1 vs exponential decay factor λ (0..1) for UEMA with
/// window w = 5 and w = 10, averaged over all datasets, mixed normal error.
///
/// Paper expectation: "λ has only a small effect on the performance of the
/// algorithm, especially when the size of the window is small"; λ = 0 is
/// exactly UMA.

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig14_decay",
      "Figure 14: F1 vs decay factor for UEMA (w = 5, 10)");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Figure 14", "decay-factor sweep, mixed normal error "
              "(20%@1.0 / 80%@0.4)", config);

  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);
  io::CsvWriter csv({"lambda", "UEMA_w5", "UEMA_w10"});
  core::TextTable table({"lambda", "UEMA(w=5)", "UEMA(w=10)"});

  for (int i = 0; i <= 10; ++i) {
    const double lambda = 0.1 * i;
    auto w5 = core::MakeUemaMatcher(5, lambda);
    auto w10 = core::MakeUemaMatcher(10, lambda);
    std::vector<core::Matcher*> matchers{w5.get(), w10.get()};
    auto pooled = RunPooled(datasets, spec, matchers, config);
    if (!pooled.ok()) {
      std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
      return 1;
    }
    const auto& rs = pooled.ValueOrDie();
    table.AddRow({core::TextTable::Num(lambda, 1),
                  core::TextTable::NumWithCi(rs[0].f1.mean, rs[0].f1.half_width),
                  core::TextTable::NumWithCi(rs[1].f1.mean, rs[1].f1.half_width)});
    csv.AddNumericRow({lambda, rs[0].f1.mean, rs[1].f1.mean});
  }
  std::printf("%s\n", table.ToString().c_str());
  EmitCsv(config, "fig14_decay.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
