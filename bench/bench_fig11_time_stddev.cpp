/// \file bench_fig11_time_stddev.cpp
/// \brief Figure 11 — average CPU time per query for PROUD, DUST and
/// Euclidean, averaged over all datasets, vs the error standard deviation
/// (normal error).
///
/// Paper expectation: σ barely affects any of the three; Euclidean is the
/// fastest and completely flat; DUST sits above it; PROUD (without its
/// wavelet synopsis) is the slowest of the three. MUNICH is excluded from
/// the figure because it "is orders of magnitude more expensive ... in the
/// order of minutes"; this harness prints a one-line MUNICH reference
/// measurement on the Figure 4 workload instead.

#include <cstdio>

#include "bench_common.hpp"
#include "core/timer.hpp"
#include "query/engine_context.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_fig11_time_stddev",
      "Figure 11: CPU time per query vs error stddev (PROUD/DUST/Euclidean)");
  config.sweep_tau = false;  // timing only; τ does not change the work
  const auto datasets = LoadDatasets(config);
  PrintBanner("Figure 11", "per-query time vs sigma, normal error", config);

  MatcherBundle bundle = MakeCoreTrio();
  io::CsvWriter csv({"sigma", "PROUD_ms", "DUST_ms", "Euclidean_ms"});
  core::TextTable table({"sigma", "PROUD (ms)", "DUST (ms)", "Euclidean (ms)"});

  // One engine context (one thread pool) for the whole σ sweep.
  query::EngineContextOptions engine_options;
  engine_options.threads = config.threads;
  query::EngineContext engines(engine_options);

  for (double sigma : SigmaGrid()) {
    const auto spec =
        uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, sigma);
    std::vector<core::Matcher*> matchers{
        bundle.proud.get(), bundle.dust.get(), bundle.euclidean.get()};
    auto pooled = RunPooled(datasets, spec, matchers, config, &engines);
    if (!pooled.ok()) {
      std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
      return 1;
    }
    const auto& rs = pooled.ValueOrDie();
    table.AddRow({core::TextTable::Num(sigma, 1),
                  core::TextTable::Num(rs[0].avg_query_millis, 4),
                  core::TextTable::Num(rs[1].avg_query_millis, 4),
                  core::TextTable::Num(rs[2].avg_query_millis, 4)});
    csv.AddNumericRow({sigma, rs[0].avg_query_millis, rs[1].avg_query_millis,
                       rs[2].avg_query_millis});
  }
  std::printf("%s\n", table.ToString().c_str());

  // MUNICH reference point (the paper's "orders of magnitude" remark),
  // measured on the Figure 4 workload (60 series x length 6, 5 samples).
  {
    auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
    const ts::Dataset full =
        datagen::GenerateScaled(spec, config.seed, 60, 48).ZNormalizedCopy();
    const ts::Dataset d = full.Truncated(60, 6).ValueOrDie();
    measures::MunichOptions mopts;
    core::MunichMatcher munich(mopts);
    core::Matcher* matchers[] = {&munich};
    core::RunOptions options = config.MakeRunOptions();
    options.max_queries = 5;
    options.munich_samples_per_point = 5;
    options.engine_context = &engines;
    auto run = core::RunSimilarityMatching(
        d, uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 1.0),
        matchers, options);
    if (run.ok()) {
      std::printf(
          "MUNICH reference (60 series x length 6, 5 samples/pt, exact "
          "estimator): %.3f ms/query — orders of magnitude above the three "
          "techniques despite a ~10x shorter series (the paper's reason for "
          "excluding MUNICH from this figure)\n\n",
          run.ValueOrDie()[0].avg_query_millis);
    }
  }

  EmitCsv(config, "fig11_time_stddev.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
