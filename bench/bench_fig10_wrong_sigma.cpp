/// \file bench_fig10_wrong_sigma.cpp
/// \brief Figure 10 — F1 per dataset when the data carries mixed-σ normal
/// error but every technique is (wrongly) told the error is constant normal
/// with σ = 0.7.
///
/// Paper expectation: "in situations where we do not have enough, or
/// accurate information on the distribution of the error, PROUD and DUST do
/// not offer an advantage when compared to Euclidean" — the three bars
/// coincide on every dataset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace uts;
  bench::BenchConfig config = bench::ParseArgs(
      argc, argv, "bench_fig10_wrong_sigma",
      "Figure 10: per-dataset F1, sigma misreported as constant 0.7");
  config.proud_sigma = 0.7;

  const auto spec =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4)
          .WithMisreported(prob::ErrorKind::kNormal, 0.7);
  core::EuclideanMatcher euclid;
  core::DustMatcher dust;
  core::ProudMatcher proud(0.5);
  return bench::RunPerDatasetFigure(
      "Figure 10", "all techniques told sigma = 0.7 (actual: mixed)", spec,
      {&euclid, &dust, &proud}, config, "fig10_wrong_sigma.csv");
}
