/// \file bench_ext_correlation.cpp
/// \brief Extension — the paper's future-work direction, instantiated.
///
/// Section 7: "a promising direction is to develop measures that take into
/// account the sequential correlations inherent in time series". UMA/UEMA
/// exploit correlation implicitly through a fixed averaging window; the
/// AR(1) Kalman/RTS smoother models it explicitly with exactly the same
/// inputs (observations + reported per-point σ). This harness runs the
/// Figure 16-style comparison with the smoother added, per error family.

#include <cstdio>

#include "bench_common.hpp"

namespace uts::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = ParseArgs(
      argc, argv, "bench_ext_correlation",
      "Extension: correlation-aware AR(1) smoother vs UMA/UEMA/Euclidean");
  const auto datasets = LoadDatasets(config);
  PrintBanner("Extension: sequential correlation",
              "Euclidean vs UMA vs UEMA vs AR1-smoother, mixed-sigma error",
              config);

  const char* kDistNames[] = {"uniform", "normal", "exponential"};
  const prob::ErrorKind kKinds[] = {prob::ErrorKind::kUniform,
                                    prob::ErrorKind::kNormal,
                                    prob::ErrorKind::kExponential};

  core::EuclideanMatcher euclid;
  auto uma = core::MakeUmaMatcher(2);
  auto uema = core::MakeUemaMatcher(2, 1.0);
  core::Ar1SmootherMatcher kalman;
  std::vector<core::Matcher*> matchers{&euclid, uma.get(), uema.get(),
                                       &kalman};

  core::TextTable table(
      {"error family", "Euclidean", "UMA(w=2)", "UEMA(w=2)", "AR1-smoother"});
  io::CsvWriter csv(
      {"error_family", "Euclidean", "UMA", "UEMA", "AR1_smoother"});

  for (int d = 0; d < 3; ++d) {
    const auto spec = uncertain::ErrorSpec::MixedSigma(kKinds[d], 0.2, 1.0,
                                                       0.4);
    auto pooled = RunPooled(datasets, spec, matchers, config);
    if (!pooled.ok()) {
      std::fprintf(stderr, "%s\n", pooled.status().ToString().c_str());
      return 1;
    }
    const auto& rs = pooled.ValueOrDie();
    table.AddRow({kDistNames[d],
                  core::TextTable::NumWithCi(rs[0].f1.mean, rs[0].f1.half_width),
                  core::TextTable::NumWithCi(rs[1].f1.mean, rs[1].f1.half_width),
                  core::TextTable::NumWithCi(rs[2].f1.mean, rs[2].f1.half_width),
                  core::TextTable::NumWithCi(rs[3].f1.mean, rs[3].f1.half_width)});
    csv.AddKeyedRow(kDistNames[d], {rs[0].f1.mean, rs[1].f1.mean,
                                    rs[2].f1.mean, rs[3].f1.mean});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Reading: if AR1-smoother beats UEMA, explicit correlation "
              "modeling pays off over\nthe fixed-window heuristic — the "
              "paper's conjecture, quantified.\n\n");
  EmitCsv(config, "ext_correlation.csv", csv);
  return 0;
}

}  // namespace
}  // namespace uts::bench

int main(int argc, char** argv) { return uts::bench::Run(argc, argv); }
